"""Vectorized (numpy) EDN routing engine for Monte-Carlo work at scale.

Implements exactly the same cycle semantics as the reference engine in
:mod:`repro.core.network` — label-priority contention, first-free wire
assignment, gamma interstage wiring — but processes a whole cycle with
array operations, handling networks of 10^5+ terminals at interactive
speed.  An integration test pins every per-message outcome of this engine
against the reference engine on randomized cycles.

Algorithm per hyperbar stage: live wires are sorted (stably) by
``(switch, bucket)``; the rank of each request within its bucket group
decides acceptance (``rank < c``) and, for winners, the bucket wire taken
(first-free ⇒ wire offset = rank).  Stable sorting by wire label realizes
the paper's input-label priority; the ``random`` discipline lex-sorts on a
random sub-key first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.config import EDNParams
from repro.core.exceptions import ConfigurationError, LabelError
from repro.core.labels import ilog2
from repro.core.tags import RetirementOrder
from repro.sim.plan import gamma_permutation, plan_for

__all__ = ["VectorizedEDN", "VectorCycleResult"]

IDLE = -1


@dataclass
class VectorCycleResult:
    """Per-input outcome arrays for one vectorized cycle.

    ``output[s]`` is the output terminal reached by source ``s`` (or ``-1``
    if idle/blocked); ``blocked_stage[s]`` is ``0`` for delivered messages,
    the 1-indexed blocking stage otherwise, and ``-1`` for idle inputs.
    """

    output: np.ndarray
    blocked_stage: np.ndarray

    @property
    def num_offered(self) -> int:
        return int((self.blocked_stage != IDLE).sum())

    @property
    def num_delivered(self) -> int:
        return int((self.blocked_stage == 0).sum())

    @property
    def acceptance_ratio(self) -> float:
        offered = self.num_offered
        return 1.0 if offered == 0 else self.num_delivered / offered

    def blocked_stage_histogram(self) -> dict[int, int]:
        """Stage index -> number of requests discarded there."""
        stages = self.blocked_stage[self.blocked_stage > 0]
        values, counts = np.unique(stages, return_counts=True)
        return {int(v): int(n) for v, n in zip(values, counts)}


class VectorizedEDN:
    """Array-based ``EDN(a, b, c, l)`` router.

    Parameters mirror :class:`repro.core.network.EDNetwork`; the wire
    policy is fixed to ``first_free`` (the policies are acceptance-
    equivalent — see the hyperbar module docs — and first-free is the
    vectorizable one).

    >>> import numpy as np
    >>> net = VectorizedEDN(EDNParams(16, 4, 4, 2))
    >>> res = net.route(np.arange(64) % 64)
    >>> res.num_delivered == 64   # identity-ish pattern, fully delivered?
    False
    """

    def __init__(
        self,
        params: EDNParams,
        *,
        priority: str = "label",
        retirement_order: Optional[RetirementOrder] = None,
        plan: "object | str | None" = "auto",
    ):
        if priority not in ("label", "random"):
            raise ConfigurationError(f"unknown priority discipline {priority!r}")
        self.params = params
        self.priority = priority
        if retirement_order is None:
            retirement_order = RetirementOrder.canonical(params.l)
        elif retirement_order.l != params.l:
            raise ConfigurationError(
                f"retirement order covers {retirement_order.l} digits, network has l={params.l}"
            )
        self.retirement_order = retirement_order
        # Stage wiring constants come from a compiled RoutingPlan shared
        # through the keyed plan cache (repro.sim.plan), so repeated engine
        # construction for one topology skips all setup.  ``plan=None``
        # opts out (self-contained setup, no sharing) — the reference mode
        # the plan-equivalence tests and benchmarks compare against.
        if plan == "auto":
            plan = plan_for(params, priority, retirement_order)
        self._plan = plan
        if plan is not None:
            self._stage_shifts = list(plan.stage_shifts)
        else:
            p = params
            # Per-stage tag shifts: stage i consumes digit index order[i-1]
            # (0 = most significant), located at bit offset
            # c_bits + (l - 1 - index) * b_bits of the destination label.
            self._stage_shifts = [
                p.capacity_bits
                + (p.l - 1 - retirement_order.position_for_stage(i)) * p.digit_bits
                for i in range(1, p.l + 1)
            ]

    @property
    def n_inputs(self) -> int:
        return self.params.num_inputs

    @property
    def n_outputs(self) -> int:
        return self.params.num_outputs

    # ------------------------------------------------------------------

    def route(
        self, dests: np.ndarray, rng: Optional[np.random.Generator] = None
    ) -> VectorCycleResult:
        """Route one cycle of demands (``dests[s]`` = output terminal or ``-1``)."""
        p = self.params
        dests = np.asarray(dests, dtype=np.int64)
        if dests.shape != (p.num_inputs,):
            raise LabelError(
                f"expected demand vector of shape ({p.num_inputs},), got {dests.shape}"
            )
        live0 = dests != IDLE
        if live0.any():
            lo, hi = int(dests[live0].min()), int(dests[live0].max())
            if lo < 0 or hi >= p.num_outputs:
                raise LabelError("demand vector contains out-of-range destinations")
        if self.priority == "random" and rng is None:
            raise ConfigurationError("random priority requires an explicit numpy Generator")

        output = np.full(p.num_inputs, IDLE, dtype=np.int64)
        blocked_stage = np.full(p.num_inputs, IDLE, dtype=np.int64)
        blocked_stage[live0] = 0  # provisional: delivered unless marked

        # Live frontier: parallel arrays (wire label, source id).
        wires = np.flatnonzero(live0).astype(np.int64)
        sources = wires.copy()

        for stage in range(1, p.l + 1):
            if wires.size == 0:
                break
            switch = wires // p.a
            digit = (dests[sources] >> self._stage_shifts[stage - 1]) & (p.b - 1)
            key = switch * p.b + digit
            accept_mask, rank = self._resolve(key, wires, p.c, rng)
            losers = sources[~accept_mask]
            blocked_stage[losers] = stage
            sources = sources[accept_mask]
            y = switch[accept_mask] * (p.b * p.c) + digit[accept_mask] * p.c + rank
            if stage < p.l:
                wires = self._gamma_vec(y, ilog2(p.wires_after_stage(stage)))
            else:
                wires = y  # buckets feed the crossbars directly

        if wires.size:
            switch = wires // p.c
            x = dests[sources] & (p.c - 1)
            key = switch * p.c + x
            accept_mask, _rank = self._resolve(key, wires, 1, rng)
            losers = sources[~accept_mask]
            blocked_stage[losers] = p.l + 1
            winners = sources[accept_mask]
            output[winners] = key[accept_mask]

        return VectorCycleResult(output=output, blocked_stage=blocked_stage)

    # ------------------------------------------------------------------

    def _resolve(
        self,
        key: np.ndarray,
        wires: np.ndarray,
        capacity: int,
        rng: Optional[np.random.Generator],
    ) -> tuple[np.ndarray, np.ndarray]:
        """Group requests by ``key`` and grant the first ``capacity`` per group.

        ``wires`` supplies the contention tie-breaker under label priority:
        the paper prioritizes contenders by switch-local input line, i.e. by
        wire label (the frontier arrays are ordered by source, which ceases
        to match wire order after the first interstage permutation).

        Returns ``(accept_mask, winner_ranks)`` where ``accept_mask`` aligns
        with ``key`` and ``winner_ranks`` lists, for accepted requests in
        ``key`` order, their 0-based rank within the group (the bucket wire
        offset under the first-free policy).
        """
        n = key.size
        if n == 0:
            # An all-idle cycle (or a frontier emptied by earlier blocking)
            # resolves to nothing; new_group[0] below would IndexError.
            return np.zeros(0, dtype=bool), np.zeros(0, dtype=np.int64)
        if self.priority == "label":
            order = np.lexsort((wires, key))
        else:
            order = np.lexsort((rng.permutation(n), key))
        sorted_key = key[order]
        new_group = np.empty(n, dtype=bool)
        new_group[0] = True
        np.not_equal(sorted_key[1:], sorted_key[:-1], out=new_group[1:])
        group_ids = np.cumsum(new_group) - 1
        group_starts = np.flatnonzero(new_group)
        rank_sorted = np.arange(n) - group_starts[group_ids]
        accept_sorted = rank_sorted < capacity

        accept_mask = np.zeros(n, dtype=bool)
        accept_mask[order[accept_sorted]] = True
        # Ranks arranged to align with key[accept_mask] (i.e. original order).
        rank_by_pos = np.empty(n, dtype=np.int64)
        rank_by_pos[order] = rank_sorted
        return accept_mask, rank_by_pos[accept_mask]

    def _gamma_vec(self, y: np.ndarray, n_bits: int) -> np.ndarray:
        """Vectorized ``gamma_{log2(c), log2(a/c)}`` on ``n_bits``-bit labels."""
        p = self.params
        return gamma_permutation(y, n_bits, p.capacity_bits, p.fan_in_bits)
