"""Buffered packet-switched EDN — compat shim over the compiled core.

.. deprecated::
    The per-packet deque simulator that lived here grew into the buffered
    stage-graph path of the core: per-wire FIFO state on the compiled
    plans (:class:`repro.sim.batched.CompiledStageRouter` with a
    ``buffer_depth``), the :func:`repro.sim.buffered.measure_buffered`
    driver with workload-registry traffic and streaming latency
    histograms, and the :class:`repro.sim.stagegraph.BufferedStageReference`
    cross-check interpreter.  :class:`BufferedEDN` remains as a thin
    wrapper so existing imports keep working, but emits a
    :class:`DeprecationWarning` on import (once per process — Python
    caches the module).  Use ``repro.sim.buffered.measure_buffered``
    instead.

The original deque engine survives as :class:`DequeBufferedEDN` — it is
the independent legacy implementation the equivalence tests and the
``perf_smoke.py --saturation`` benchmark compare the compiled kernels
against, and is not deprecated *as a test oracle* (only as the
measurement path).
"""

from __future__ import annotations

import warnings
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.core.config import EDNParams
from repro.core.exceptions import ConfigurationError
from repro.core.topology import EDNTopology
from repro.sim.rng import make_rng

warnings.warn(
    "repro.ext.buffered is deprecated; use repro.sim.buffered.measure_buffered "
    "on a stage graph (repro.sim.stagegraph.edn_graph) instead",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = ["BufferedEDN", "DequeBufferedEDN", "BufferedMetrics"]


@dataclass
class BufferedMetrics:
    """Steady-state measurements of one buffered run."""

    cycles: int
    warmup: int
    injected: int
    delivered: int
    throughput: float        # delivered per output per measured cycle
    mean_latency: float      # cycles from injection to delivery
    mean_occupancy: float    # buffered packets per wire (measured cycles)

    @property
    def normalized_throughput(self) -> float:
        """Alias kept for symmetry with acceptance-style reporting."""
        return self.throughput


class BufferedEDN:
    """Synchronous buffered packet switching over an ``EDN(a, b, c, l)``.

    Compat wrapper: the historical ``run(rate, cycles, warmup, seed)``
    contract, executed on the compiled buffered stage-graph core
    (:func:`repro.sim.buffered.measure_buffered` over
    :func:`repro.sim.stagegraph.edn_graph` with uniform traffic).
    Semantics are the classical single/multi-buffered discipline the
    deque engine implemented — output-side-first service, label-priority
    contention, back-pressure, inject-if-room — so measurements agree
    with :class:`DequeBufferedEDN` up to the traffic stream's RNG
    consumption order.

    >>> net = BufferedEDN(EDNParams(16, 4, 4, 2), depth=1)
    >>> metrics = net.run(rate=1.0, cycles=200, warmup=50, seed=0)
    >>> 0.0 < metrics.throughput <= 1.0
    True
    """

    def __init__(self, params: EDNParams, *, depth: int = 1):
        if depth < 1:
            raise ConfigurationError(f"buffer depth must be >= 1, got {depth}")
        self.params = params
        self.depth = depth

    def run(
        self, *, rate: float, cycles: int, warmup: int = 0, seed: int | None = 0
    ) -> BufferedMetrics:
        """Simulate ``warmup + cycles`` cycles; measure the last ``cycles``."""
        from repro.sim.buffered import measure_buffered
        from repro.sim.stagegraph import edn_graph

        if not 0.0 <= rate <= 1.0:
            raise ConfigurationError(f"rate must lie in [0, 1], got {rate}")
        if cycles < 1:
            raise ConfigurationError("need at least one measured cycle")
        result = measure_buffered(
            edn_graph(self.params),
            traffic=f"uniform:{rate:g}",
            depth=self.depth,
            cycles=cycles,
            warmup=warmup,
            seed=seed,
        )
        return BufferedMetrics(
            cycles=result.cycles,
            warmup=result.warmup,
            injected=result.injected,
            delivered=result.delivered,
            throughput=result.throughput,
            mean_latency=result.mean_latency,
            mean_occupancy=result.mean_occupancy,
        )

    def __repr__(self) -> str:
        return f"BufferedEDN({self.params}, depth={self.depth})"


@dataclass
class _Packet:
    destination: int
    injected_at: int


class DequeBufferedEDN:
    """The original per-packet deque engine, kept as the legacy oracle.

    Implements the classical synchronous single/multi-buffered discipline
    on the EDN topology with plain Python deques:

    * every wire at every stage boundary owns a FIFO of ``depth`` packets;
    * each cycle, stages are serviced output-side-first: delivered packets
      leave, then every hyperbar moves up to (free wires in the target
      bucket) packets forward — contention resolved by input-wire label as
      in the paper — and losers simply stay buffered (no loss);
    * fresh packets are injected at an input whenever its entry buffer has
      room, with probability ``rate``.

    Shares no machinery with the compiled buffered kernels, which makes
    it the independent slow path ``tests/core/test_buffered.py`` checks
    packet conservation on and ``perf_smoke.py --saturation`` benchmarks
    the compiled path against.
    """

    def __init__(self, params: EDNParams, *, depth: int = 1):
        if depth < 1:
            raise ConfigurationError(f"buffer depth must be >= 1, got {depth}")
        self.params = params
        self.depth = depth
        self.topology = EDNTopology(params)
        # Buffer banks at each boundary: boundary 0 holds packets waiting to
        # enter stage 1; boundary i (1..l) holds packets that cleared stage i.
        self._boundaries = [
            [deque() for _ in range(params.wires_after_stage(i))]
            for i in range(params.l + 1)
        ]

    # ------------------------------------------------------------------

    def run(
        self, *, rate: float, cycles: int, warmup: int = 0, seed: int | None = 0
    ) -> BufferedMetrics:
        """Simulate ``warmup + cycles`` cycles; measure the last ``cycles``."""
        if not 0.0 <= rate <= 1.0:
            raise ConfigurationError(f"rate must lie in [0, 1], got {rate}")
        if cycles < 1:
            raise ConfigurationError("need at least one measured cycle")
        p = self.params
        rng = make_rng(seed)
        injected = delivered = 0
        latency_total = 0.0
        occupancy_total = 0.0
        total_wires = sum(len(bank) for bank in self._boundaries)

        for cycle in range(warmup + cycles):
            measuring = cycle >= warmup
            delivered_now, latency_now = self._deliver(cycle)
            for stage in range(p.l, 0, -1):
                self._advance_stage(stage)
            injected_now = self._inject(rate, cycle, rng)
            if measuring:
                delivered += delivered_now
                latency_total += latency_now
                injected += injected_now
                occupancy_total += (
                    sum(len(q) for bank in self._boundaries for q in bank) / total_wires
                )

        return BufferedMetrics(
            cycles=cycles,
            warmup=warmup,
            injected=injected,
            delivered=delivered,
            throughput=delivered / (cycles * p.num_outputs),
            mean_latency=(latency_total / delivered) if delivered else 0.0,
            mean_occupancy=occupancy_total / cycles,
        )

    # ------------------------------------------------------------------

    def _deliver(self, cycle: int) -> tuple[int, float]:
        """Final stage: one packet per crossbar output leaves per cycle.

        The last boundary's FIFOs feed the ``c x c`` crossbars; each output
        terminal accepts one packet per cycle, chosen from the crossbar's
        input wires by label priority among head-of-line packets.
        """
        p = self.params
        delivered = 0
        latency = 0.0
        last = self._boundaries[p.l]
        for crossbar in range(p.num_crossbars):
            taken: set[int] = set()
            for port in range(p.c):
                queue = last[crossbar * p.c + port]
                if not queue:
                    continue
                packet = queue[0]
                x = packet.destination % p.c
                if x in taken:
                    continue  # head-of-line blocked this cycle
                taken.add(x)
                queue.popleft()
                delivered += 1
                latency += cycle - packet.injected_at
        return delivered, latency

    def _advance_stage(self, stage: int) -> None:
        """Move packets through hyperbar ``stage`` under back-pressure."""
        p = self.params
        inbound = self._boundaries[stage - 1]
        outbound = self._boundaries[stage]
        for switch in range(p.hyperbars_in_stage(stage)):
            base = switch * p.a
            granted: dict[int, int] = {}  # bucket -> wires consumed this cycle
            for port in range(p.a):
                queue = inbound[base + port]
                if not queue:
                    continue
                packet = queue[0]
                digit = self._digit(packet.destination, stage)
                start = granted.get(digit, 0)
                # First-free live slot: a bucket wire whose *next-boundary*
                # FIFO has room.
                moved = False
                for k in range(start, p.c):
                    out_label = self.topology.hyperbar_output_label(
                        stage, switch, digit * p.c + k
                    )
                    target = outbound[self.topology.interstage(stage, out_label)]
                    granted[digit] = k + 1
                    if len(target) < self.depth:
                        target.append(queue.popleft())
                        moved = True
                        break
                if not moved:
                    granted[digit] = p.c  # bucket exhausted for this cycle

    def _inject(self, rate: float, cycle: int, rng: np.random.Generator) -> int:
        """Offer fresh packets to input FIFOs with room."""
        p = self.params
        entry = self._boundaries[0]
        coins = rng.random(p.num_inputs) < rate
        dests = rng.integers(0, p.num_outputs, size=p.num_inputs)
        injected = 0
        for source in range(p.num_inputs):
            if coins[source] and len(entry[source]) < self.depth:
                entry[source].append(_Packet(int(dests[source]), cycle))
                injected += 1
        return injected

    def _digit(self, destination: int, stage: int) -> int:
        p = self.params
        shift = p.capacity_bits + (p.l - stage) * p.digit_bits
        return (destination >> shift) & (p.b - 1)

    def __repr__(self) -> str:
        return f"DequeBufferedEDN({self.params}, depth={self.depth})"
