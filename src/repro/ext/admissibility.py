"""One-pass permutation admissibility censuses.

Figure 5 exhibits *one* permutation the EDN(64,16,4,2) cannot route in a
single pass; this extension asks how many there are.  A permutation is
*admissible* for a network when every message is delivered in one
circuit-switched pass.  For unique-path deltas the admissible set is the
classical "omega-routable" class of measure zero among all ``N!``
permutations; Theorem 2's multipath enlarges it, and Lemma 2 guarantees the
final two stages never shrink it.

Because contention resolution is work-conserving, admissibility does not
depend on the priority discipline: a permutation routes fully iff no bucket
along the way is oversubscribed, a property of the demand pattern alone.

Exhaustive censuses are exponential (``N!``); the functions below support
both exhaustive enumeration for ``N <= 8`` and Monte-Carlo estimation above
that.
"""

from __future__ import annotations

from itertools import permutations as iter_permutations
from math import factorial

import numpy as np

from repro.core.exceptions import ConfigurationError
from repro.sim.rng import make_rng
from repro.sim.vectorized import VectorizedEDN

__all__ = ["is_admissible", "admissible_fraction"]

_EXHAUSTIVE_LIMIT = 8


def is_admissible(network: VectorizedEDN, permutation: np.ndarray) -> bool:
    """True iff ``permutation`` routes completely in one pass."""
    permutation = np.asarray(permutation, dtype=np.int64)
    if sorted(permutation.tolist()) != list(range(network.n_outputs)):
        raise ConfigurationError("input must be a full permutation of the outputs")
    result = network.route(permutation)
    return result.num_delivered == network.n_inputs


def admissible_fraction(
    network: VectorizedEDN,
    *,
    samples: int | None = None,
    seed: int | None = 0,
) -> tuple[float, int]:
    """Fraction of all permutations routable in one pass.

    Exhaustive when the network has at most 8 terminals and ``samples`` is
    None; otherwise a Monte-Carlo estimate over ``samples`` uniform random
    permutations (default 2000).  Returns ``(fraction, population)`` where
    ``population`` is the number of permutations examined.
    """
    n = network.n_inputs
    if network.n_outputs != n:
        raise ConfigurationError("admissibility census needs a square network")
    if samples is None and n <= _EXHAUSTIVE_LIMIT:
        good = 0
        for perm in iter_permutations(range(n)):
            if is_admissible(network, np.array(perm, dtype=np.int64)):
                good += 1
        return good / factorial(n), factorial(n)
    if samples is None:
        samples = 2_000
    rng = make_rng(seed)
    good = sum(
        1 for _ in range(samples) if is_admissible(network, rng.permutation(n))
    )
    return good / samples, samples
