"""Extensions beyond the paper's model.

The paper's analysis is strictly circuit-switched and bufferless ("It is
assumed that the network is circuit-switched, and so there are no buffers
or queues in the network", Section 3.2).  This subpackage explores the
era's standard follow-ups on top of the same topology:

* :mod:`repro.ext.buffered` — synchronous packet switching with per-wire
  FIFO buffers and back-pressure (Dias & Jump / Jenq style), measuring
  throughput and latency where the paper measures acceptance.  Now a
  deprecated compat shim: the discipline lives in the compiled core
  (:mod:`repro.sim.buffered`), and importing the shim warns;
* :mod:`repro.ext.admissibility` — exhaustive censuses of which
  permutations route conflict-free in a single pass, quantifying how
  capacity enlarges the admissible set (Lemma 2's combinatorial shadow).
"""

from repro.ext.admissibility import admissible_fraction, is_admissible

__all__ = [
    "BufferedEDN",
    "BufferedMetrics",
    "is_admissible",
    "admissible_fraction",
]


def __getattr__(name: str):
    # ``repro.ext.buffered`` is a deprecated compat shim that warns on
    # import; resolve its re-exports lazily so merely importing this
    # package (e.g. for admissibility) stays silent.
    if name in ("BufferedEDN", "BufferedMetrics"):
        from repro.ext import buffered

        return getattr(buffered, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
