"""Extensions beyond the paper's model.

The paper's analysis is strictly circuit-switched and bufferless ("It is
assumed that the network is circuit-switched, and so there are no buffers
or queues in the network", Section 3.2).  This subpackage explores the
era's standard follow-ups on top of the same topology:

* :mod:`repro.ext.buffered` — synchronous packet switching with per-wire
  FIFO buffers and back-pressure (Dias & Jump / Jenq style), measuring
  throughput and latency where the paper measures acceptance;
* :mod:`repro.ext.admissibility` — exhaustive censuses of which
  permutations route conflict-free in a single pass, quantifying how
  capacity enlarges the admissible set (Lemma 2's combinatorial shadow).
"""

from repro.ext.admissibility import admissible_fraction, is_admissible
from repro.ext.buffered import BufferedEDN, BufferedMetrics

__all__ = [
    "BufferedEDN",
    "BufferedMetrics",
    "is_admissible",
    "admissible_fraction",
]
