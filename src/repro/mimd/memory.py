"""Memory modules for the MIMD processor-memory system (Figure 9).

The paper's base model treats a memory module as always ready: an accepted
request is served within the cycle.  This module adds the bookkeeping a
real study needs — per-module access counts for load-imbalance analysis —
and an optional multi-cycle service-time extension: a module busy serving a
previous request turns away new arrivals (they count as rejected, exactly
as if the network had blocked them), modelling DRAM banks slower than the
interconnect clock.
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import ConfigurationError

__all__ = ["MemoryBank"]


class MemoryBank:
    """``m`` memory modules with optional service latency.

    Parameters
    ----------
    m:
        Module count (== network outputs).
    service_cycles:
        Cycles a module is occupied per served request.  The paper's model
        is ``1`` (always ready); larger values enable the memory-bottleneck
        ablation.
    """

    def __init__(self, m: int, *, service_cycles: int = 1):
        if m < 1:
            raise ConfigurationError("need a positive module count")
        if service_cycles < 1:
            raise ConfigurationError(f"service_cycles must be >= 1, got {service_cycles}")
        self.m = m
        self.service_cycles = service_cycles
        self.busy_until = np.zeros(m, dtype=np.int64)
        self.accesses = np.zeros(m, dtype=np.int64)
        self.turned_away = np.zeros(m, dtype=np.int64)

    def admit(self, modules: np.ndarray, cycle: int) -> np.ndarray:
        """Admit network-accepted requests to their modules.

        ``modules`` lists the target module of each network-delivered
        request this cycle (at most one per module — the network guarantees
        that).  Returns a boolean mask: True where the module was free and
        the request is truly served.  With ``service_cycles == 1`` every
        entry is True.
        """
        modules = np.asarray(modules, dtype=np.int64)
        if modules.size and (modules.min() < 0 or modules.max() >= self.m):
            raise ConfigurationError("module index out of range")
        if self.service_cycles == 1:
            served = np.ones(modules.size, dtype=bool)
        else:
            served = self.busy_until[modules] <= cycle
            self.busy_until[modules[served]] = cycle + self.service_cycles
        np.add.at(self.accesses, modules[served], 1)
        np.add.at(self.turned_away, modules[~served], 1)
        return served

    @property
    def total_served(self) -> int:
        return int(self.accesses.sum())

    def load_imbalance(self) -> float:
        """Max/mean access ratio (1.0 = perfectly balanced)."""
        if self.total_served == 0:
            return 1.0
        mean = self.accesses.mean()
        return float(self.accesses.max() / mean) if mean > 0 else 1.0
