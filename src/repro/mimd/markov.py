"""Markov model of request resubmission in MIMD systems (paper, Section 4).

In a shared-memory multiprocessor, a processor whose request is rejected
does not give up — it resubmits next cycle and stalls until served.  The
paper models each processor as a two-state Markov chain (Figure 10):
**Active** (issues a fresh request with probability ``r``) and **Waiting**
(resubmits with probability 1).  With ``PA'(r)`` the steady-state network
acceptance,

* ``qA = PA' / (r + PA' - r*PA')``, ``qW = r(1 - PA') / (r + PA' - r*PA')``
  (Eq. 7),
* the effective offered rate is ``r' = r*qA + qW = r / (r + PA' - r*PA')``
  (Eq. 8),
* self-consistency ``PA'(r) = PA(r')`` (Eq. 9) is solved by the fixed-point
  iteration ``PA'_{n+1} = PA(r / (r + PA'_n - r*PA'_n))`` from
  ``PA'_0 = PA(r)`` (Eq. 10, the Hwang & Briggs method).

The system *efficiency* (Eq. 11) compares against an ideal memory that
always satisfies requests: it is the steady-state probability ``qA`` that a
processor is doing useful work.

All functions are generic in the network: they take any ``pa`` callable
(EDN Eq. 4, crossbar, delta, ...), so one model serves every topology.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.analysis import acceptance_probability
from repro.core.config import EDNParams
from repro.core.exceptions import ConfigurationError, ConvergenceError

__all__ = [
    "ResubmissionSolution",
    "effective_rate",
    "steady_state_probabilities",
    "solve_resubmission",
    "edn_resubmission",
]


@dataclass(frozen=True)
class ResubmissionSolution:
    """Converged steady state of the resubmission Markov chain.

    Attributes
    ----------
    r:
        Fresh-request probability of an active processor.
    pa_resubmit:
        ``PA'(r)`` — acceptance seen at the (inflated) steady-state load.
    effective_rate:
        ``r'`` — the per-input offered rate including resubmissions.
    q_active, q_waiting:
        Steady-state processor state probabilities (sum to 1).
    efficiency:
        ``qA``: utilization relative to an ideal always-satisfying memory
        (Eq. 11).
    iterations:
        Fixed-point steps used.
    """

    r: float
    pa_resubmit: float
    effective_rate: float
    q_active: float
    q_waiting: float
    iterations: int

    @property
    def efficiency(self) -> float:
        return self.q_active

    @property
    def bandwidth_per_input(self) -> float:
        """Delivered requests per input per cycle: ``r' * PA'``."""
        return self.effective_rate * self.pa_resubmit

    @property
    def expected_wait(self) -> float:
        """Expected total cycles a request spends until served: ``1 / PA'``.

        A request succeeds each cycle with probability ``PA'`` independently
        (the chain's memoryless retry), so its service time is geometric;
        the *waiting* portion beyond the first attempt is ``1/PA' - 1``.
        """
        return 1.0 / self.pa_resubmit


def effective_rate(r: float, pa_prime: float) -> float:
    """Eq. 8: offered rate once rejected requests are resubmitted.

    Always >= ``r``: waiting processors request deterministically.
    """
    denominator = r + pa_prime - r * pa_prime
    if denominator <= 0.0:
        raise ConfigurationError(f"degenerate Markov chain (r={r}, PA'={pa_prime})")
    return r / denominator


def steady_state_probabilities(r: float, pa_prime: float) -> tuple[float, float]:
    """Eq. 7: ``(qA, qW)`` of the Active/Waiting chain (Figure 10).

    Balance: ``qA * r * (1 - PA') = qW * PA'`` with ``qA + qW = 1``.
    """
    denominator = r + pa_prime - r * pa_prime
    if denominator <= 0.0:
        raise ConfigurationError(f"degenerate Markov chain (r={r}, PA'={pa_prime})")
    q_active = pa_prime / denominator
    q_waiting = r * (1.0 - pa_prime) / denominator
    return q_active, q_waiting


def solve_resubmission(
    pa: Callable[[float], float],
    r: float,
    *,
    tolerance: float = 1e-12,
    max_iterations: int = 10_000,
) -> ResubmissionSolution:
    """Solve Eq. 9 by the fixed-point iteration of Eq. 10.

    ``pa`` maps an offered rate in [0, 1] to an acceptance probability;
    the iteration starts from ``PA'_0 = PA(r)`` as the paper prescribes.
    Raises :class:`ConvergenceError` if the tolerance is not met.
    """
    if not 0.0 <= r <= 1.0:
        raise ConfigurationError(f"request rate must lie in [0, 1], got {r}")
    if r == 0.0:
        return ResubmissionSolution(
            r=0.0, pa_resubmit=1.0, effective_rate=0.0, q_active=1.0, q_waiting=0.0, iterations=0
        )
    pa_prime = pa(r)
    for iteration in range(1, max_iterations + 1):
        updated = pa(effective_rate(r, pa_prime))
        if abs(updated - pa_prime) <= tolerance:
            pa_prime = updated
            q_active, q_waiting = steady_state_probabilities(r, pa_prime)
            return ResubmissionSolution(
                r=r,
                pa_resubmit=pa_prime,
                effective_rate=effective_rate(r, pa_prime),
                q_active=q_active,
                q_waiting=q_waiting,
                iterations=iteration,
            )
        pa_prime = updated
    raise ConvergenceError(
        f"resubmission fixed point did not converge within {max_iterations} iterations "
        f"(r={r}, last PA'={pa_prime})"
    )


def edn_resubmission(params: EDNParams, r: float, **kwargs) -> ResubmissionSolution:
    """Convenience: solve the resubmission model for an EDN via Eq. 4."""
    return solve_resubmission(lambda rate: acceptance_probability(params, rate), r, **kwargs)
