"""Processor-side state for the MIMD cycle simulator.

Section 4 models each processor as Active (thinking; issues a fresh memory
request with probability ``r`` per cycle) or Waiting (stalled on a rejected
request, which it resubmits every cycle until served).  For simulations of
thousands of processors the states live in numpy arrays; this module wraps
them behind a small, explicit API so the system simulator reads like the
paper's description.
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import ConfigurationError

__all__ = ["ProcessorArray", "ACTIVE", "WAITING"]

ACTIVE = 0
WAITING = 1
_NO_REQUEST = -1


class ProcessorArray:
    """State of ``n`` processors sharing one memory through the network.

    Parameters
    ----------
    n:
        Processor count (== network inputs).
    n_modules:
        Memory module count (== network outputs).
    request_rate:
        Probability an Active processor issues a request each cycle.
    redraw_on_retry:
        If True, a Waiting processor redraws a fresh uniform destination on
        every resubmission — the paper's analytic assumption ("resubmitted
        requests along with the new requests address the memory modules
        uniformly").  If False (default), it retries the *same* module,
        which is what real programs do; comparing the two quantifies how
        much the uniformity assumption matters (``fig11_sim`` benchmark).
    """

    def __init__(
        self,
        n: int,
        n_modules: int,
        request_rate: float,
        *,
        redraw_on_retry: bool = False,
    ):
        if n < 1 or n_modules < 1:
            raise ConfigurationError("need positive processor and module counts")
        if not 0.0 <= request_rate <= 1.0:
            raise ConfigurationError(f"request rate must lie in [0, 1], got {request_rate}")
        self.n = n
        self.n_modules = n_modules
        self.request_rate = request_rate
        self.redraw_on_retry = redraw_on_retry
        self.state = np.full(n, ACTIVE, dtype=np.int8)
        self.pending = np.full(n, _NO_REQUEST, dtype=np.int64)
        self.wait_cycles = np.zeros(n, dtype=np.int64)

    def issue_requests(self, rng: np.random.Generator) -> np.ndarray:
        """Build this cycle's demand vector (``-1`` = no request).

        Active processors toss an ``r``-coin and draw uniform destinations;
        Waiting processors resubmit (same module, or redrawn when
        ``redraw_on_retry``).
        """
        dests = np.full(self.n, _NO_REQUEST, dtype=np.int64)
        active = self.state == ACTIVE
        issuing = active & (rng.random(self.n) < self.request_rate)
        dests[issuing] = rng.integers(0, self.n_modules, size=int(issuing.sum()))
        waiting = self.state == WAITING
        if self.redraw_on_retry:
            dests[waiting] = rng.integers(0, self.n_modules, size=int(waiting.sum()))
        else:
            dests[waiting] = self.pending[waiting]
        self.pending = dests
        return dests

    def absorb_outcomes(self, delivered_mask: np.ndarray) -> None:
        """Advance processor states given which requests were delivered.

        Delivered → Active next cycle; rejected → Waiting (wait counter
        grows); processors that issued nothing stay Active.
        """
        requested = self.pending != _NO_REQUEST
        served = requested & delivered_mask
        rejected = requested & ~delivered_mask
        self.state[served] = ACTIVE
        self.wait_cycles[served] = 0
        self.state[rejected] = WAITING
        self.wait_cycles[rejected] += 1
        self.pending[served] = _NO_REQUEST

    @property
    def fraction_active(self) -> float:
        return float((self.state == ACTIVE).mean())

    @property
    def fraction_waiting(self) -> float:
        return float((self.state == WAITING).mean())
