"""Cycle simulator of the shared-memory MIMD system (paper, Section 4, Figure 9).

Processors on the network inputs share memory modules on the outputs
through an ``EDN(a, b, c, l)``.  Two operating policies:

* ``"ignore"`` — rejected requests vanish (Section 3's assumption 3); the
  measured acceptance should track Eq. 4;
* ``"resubmit"`` — rejected requests stall their processor and are
  reissued every cycle until served (Section 4); the measured acceptance,
  processor utilization and effective offered rate should track the Markov
  model (Eqs. 7-10), which the ``fig11_sim`` benchmark verifies.

The simulator is warmup-aware and reports batch-means confidence intervals
because the resubmission dynamics correlate consecutive cycles.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import EDNParams
from repro.core.exceptions import ConfigurationError
from repro.mimd.memory import MemoryBank
from repro.mimd.processor import ProcessorArray
from repro.sim.rng import make_rng
from repro.sim.stats import Interval, batch_means
from repro.sim.vectorized import VectorizedEDN

__all__ = ["MIMDSystem", "MIMDMetrics"]

POLICIES = ("ignore", "resubmit")


@dataclass
class MIMDMetrics:
    """Steady-state measurements from one MIMD simulation run.

    ``acceptance`` is delivered/offered over the measurement window (the
    simulated counterpart of Eq. 4's ``PA`` or Section 4's ``PA'``);
    ``utilization`` is the fraction of processors Active (the counterpart
    of ``qA``); ``offered_rate`` is requests offered per input per cycle
    (the counterpart of ``r'``); ``bandwidth`` is deliveries per cycle.
    """

    cycles: int
    warmup: int
    acceptance: Interval
    utilization: Interval
    offered_rate: float
    bandwidth: float
    mean_wait: float
    load_imbalance: float


class MIMDSystem:
    """A processor-memory multiprocessor around an EDN.

    >>> system = MIMDSystem(EDNParams(16, 4, 4, 2), request_rate=0.5)
    >>> metrics = system.run(cycles=300, warmup=50, seed=1)
    >>> 0.0 < metrics.acceptance.point <= 1.0
    True
    """

    def __init__(
        self,
        params: EDNParams,
        request_rate: float,
        *,
        policy: str = "resubmit",
        redraw_on_retry: bool = False,
        service_cycles: int = 1,
        priority: str = "label",
    ):
        if policy not in POLICIES:
            raise ConfigurationError(f"unknown policy {policy!r}; expected one of {POLICIES}")
        self.params = params
        self.policy = policy
        self.network = VectorizedEDN(params, priority=priority)
        self.processors = ProcessorArray(
            params.num_inputs,
            params.num_outputs,
            request_rate,
            redraw_on_retry=redraw_on_retry,
        )
        self.memory = MemoryBank(params.num_outputs, service_cycles=service_cycles)

    def run(self, *, cycles: int, warmup: int = 0, seed: int | None = 0) -> MIMDMetrics:
        """Simulate ``warmup + cycles`` network cycles; measure the last ``cycles``."""
        if cycles < 1:
            raise ConfigurationError("need at least one measured cycle")
        rng = make_rng(seed)
        acceptance_series: list[float] = []
        utilization_series: list[float] = []
        offered_total = 0
        delivered_total = 0
        wait_samples: list[float] = []

        for cycle in range(warmup + cycles):
            measuring = cycle >= warmup
            utilization = self.processors.fraction_active
            dests = self.processors.issue_requests(rng)
            result = self.network.route(dests)
            delivered_mask = result.blocked_stage == 0
            if delivered_mask.any():
                served = self.memory.admit(dests[delivered_mask], cycle)
                if not served.all():
                    # Busy modules bounce their request: flip those back to
                    # rejected so the processor-side policy applies.
                    bounced = np.flatnonzero(delivered_mask)[~served]
                    delivered_mask[bounced] = False

            offered = int((dests >= 0).sum())
            delivered = int(delivered_mask.sum())
            if measuring:
                acceptance_series.append(1.0 if offered == 0 else delivered / offered)
                utilization_series.append(utilization)
                offered_total += offered
                delivered_total += delivered
                rejected = (dests >= 0) & ~delivered_mask
                if rejected.any():
                    wait_samples.append(float(self.processors.wait_cycles[rejected].mean()))

            if self.policy == "resubmit":
                self.processors.absorb_outcomes(delivered_mask)
            else:
                # Ignored rejections: every processor is fresh next cycle.
                self.processors.state[:] = 0
                self.processors.pending[:] = -1

        n_batches = min(20, max(2, len(acceptance_series) // 10))
        acceptance = batch_means(acceptance_series, n_batches).confidence_interval()
        utilization = batch_means(utilization_series, n_batches).confidence_interval()
        return MIMDMetrics(
            cycles=cycles,
            warmup=warmup,
            acceptance=acceptance,
            utilization=utilization,
            offered_rate=offered_total / (cycles * self.params.num_inputs),
            bandwidth=delivered_total / cycles,
            mean_wait=float(np.mean(wait_samples)) if wait_samples else 0.0,
            load_imbalance=self.memory.load_imbalance(),
        )
