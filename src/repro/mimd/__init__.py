"""Section 4: EDNs in MIMD shared-memory multiprocessors.

* :mod:`repro.mimd.markov` — the Active/Waiting Markov model of request
  resubmission (Eqs. 7-11, Figure 10);
* :mod:`repro.mimd.processor` / :mod:`repro.mimd.memory` — processor and
  memory-module state for the cycle simulator;
* :mod:`repro.mimd.system` — the processor-memory system simulator
  (Figure 9) validating the analytic model.
"""

from repro.mimd.markov import (
    ResubmissionSolution,
    edn_resubmission,
    effective_rate,
    solve_resubmission,
    steady_state_probabilities,
)
from repro.mimd.memory import MemoryBank
from repro.mimd.processor import ProcessorArray
from repro.mimd.system import MIMDMetrics, MIMDSystem

__all__ = [
    "ResubmissionSolution",
    "solve_resubmission",
    "edn_resubmission",
    "effective_rate",
    "steady_state_probabilities",
    "ProcessorArray",
    "MemoryBank",
    "MIMDSystem",
    "MIMDMetrics",
]
