"""Patel's delta network baseline (the paper's reference [21]).

A delta network ``a^l x b^l`` is ``l`` stages of ``a x b`` crossbars with
digit-controlled routing and a *unique* path between every input/output
pair — exactly the ``c = 1`` degenerate EDN (paper, after Theorem 2).  The
paper's whole pitch is that EDNs keep delta-like cost while recovering
crossbar-like performance, so the delta is the baseline every benchmark
compares against.

The class is a thin topology descriptor: the delta's structure is a
compiled :func:`~repro.sim.stagegraph.delta_graph` routed by the shared
batched kernels (:class:`~repro.sim.batched.CompiledStageRouter`), its
analytics Patel's recursion ``r_{i+1} = 1 - (1 - r_i/b)^a``
(:func:`repro.core.analysis.delta_acceptance`).  Routing is pinned
bit-identical to the per-cycle reference paths in the test suite.
"""

from __future__ import annotations

import numpy as np

from repro.core.analysis import delta_acceptance
from repro.core.config import EDNParams
from repro.core.cost import crosspoint_cost, wire_cost
from repro.sim.batched import BatchAcceptanceCounts, BatchCycleResult, CompiledStageRouter
from repro.sim.rng import SeedLike, as_generator
from repro.sim.stagegraph import StageGraph, delta_graph
from repro.sim.vectorized import VectorCycleResult

__all__ = ["DeltaNetwork"]


class DeltaNetwork:
    """An ``a^l x b^l`` delta network built from ``a x b`` crossbars.

    >>> import numpy as np
    >>> net = DeltaNetwork(2, 2, 3)     # an 8x8 delta from 2x2 crossbars
    >>> net.n_inputs
    8
    >>> res = net.route(np.array([5, -1, -1, -1, -1, -1, -1, -1]))
    >>> res.num_delivered, int(res.output[0])   # a lone message always lands
    (1, 5)
    """

    def __init__(
        self, a: int, b: int, l: int, *, priority: str = "label", seed: SeedLike = None
    ):
        self.params = EDNParams(a, b, 1, l)
        self.graph: StageGraph = delta_graph(a, b, l)
        self.priority = priority
        self._router = CompiledStageRouter(self.graph, priority=priority)
        # Default stream for route calls that pass no rng (random priority).
        self._rng = as_generator(seed)

    @property
    def a(self) -> int:
        return self.params.a

    @property
    def b(self) -> int:
        return self.params.b

    @property
    def l(self) -> int:
        return self.params.l

    @property
    def n_inputs(self) -> int:
        return self.params.num_inputs

    @property
    def n_outputs(self) -> int:
        return self.params.num_outputs

    def route(self, dests: np.ndarray, rng: SeedLike = None) -> VectorCycleResult:
        """Route one cycle of demands through the unique-path network.

        ``rng`` accepts anything seed-like (``int``/``SeedSequence``/
        ``Generator``); ``None`` falls back to the constructor's ``seed``
        stream.
        """
        generator = as_generator(rng) if rng is not None else self._rng
        return self._router.route(dests, generator)

    def route_batch(self, dests: np.ndarray, rng=None) -> BatchCycleResult:
        """Route a ``(batch, N)`` demand matrix on the compiled kernels."""
        return self._router.route_batch(dests, rng if rng is not None else self._rng)

    def route_batch_counts(self, dests: np.ndarray, rng=None) -> BatchAcceptanceCounts:
        """Acceptance counts for a batch via the counts-only fast path."""
        return self._router.route_batch_counts(
            dests, rng if rng is not None else self._rng
        )

    def preferred_batch(self) -> int:
        return self._router.preferred_batch()

    def analytic_acceptance(self, r: float) -> float:
        """Patel's ``PA(r)`` recursion for this network."""
        return delta_acceptance(self.params.a, self.params.b, self.params.l, r)

    def crosspoints(self) -> int:
        """Crosspoint cost (``c = 1`` specialization of Eq. 2)."""
        return crosspoint_cost(self.params)

    def wires(self) -> int:
        """Wire cost (``c = 1`` specialization of Eq. 3)."""
        return wire_cost(self.params)

    def __repr__(self) -> str:
        return f"DeltaNetwork({self.a}x{self.b} switches, l={self.l})"
