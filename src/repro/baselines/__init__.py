"""Baseline networks the paper compares EDNs against (or builds upon).

* :mod:`repro.baselines.crossbar_network` — the full crossbar (performance
  upper bound, cost strawman; Figures 7-8's reference curve);
* :mod:`repro.baselines.delta` — Patel's delta network (the ``c = 1`` EDN,
  the cost baseline whose performance "fell off rapidly with network
  size");
* :mod:`repro.baselines.dilated` — d-dilated deltas (multipath via link
  replication; ``d`` times the EDN's wires, Section 1);
* :mod:`repro.baselines.omega` — Lawrie's omega network (a delta with an
  input shuffle; exercises Corollary 1);
* :mod:`repro.baselines.benes` — the rearrangeable Beneš network with the
  looping algorithm (the globally-controlled foil from reference [31]);
* :mod:`repro.baselines.clos` — three-stage Clos networks with
  matching-decomposition routing (references [7], [31]).
"""

from repro.baselines.benes import BenesNetwork
from repro.baselines.clos import ClosNetwork, ClosRoute
from repro.baselines.crossbar_network import CrossbarCycleResult, CrossbarNetwork
from repro.baselines.delta import DeltaNetwork
from repro.baselines.dilated import DilatedDelta
from repro.baselines.omega import OmegaNetwork

__all__ = [
    "CrossbarNetwork",
    "CrossbarCycleResult",
    "DeltaNetwork",
    "DilatedDelta",
    "OmegaNetwork",
    "BenesNetwork",
    "ClosNetwork",
    "ClosRoute",
]
