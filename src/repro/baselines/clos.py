"""Three-stage Clos network with rearrangeable permutation routing.

The other classical fabric of the paper's restricted-access lineage
(reference [31] studies clusters over crossbar, Clos and Beneš networks,
and reference [7] is Clos's original paper).  A ``C(n, m, r)`` Clos network
has ``r`` input switches of shape ``n x m``, ``m`` middle ``r x r``
crossbars, and ``r`` output switches of shape ``m x n``; it serves
``N = n * r`` terminals and is *rearrangeable* for ``m >= n``
(Slepian–Duguid): any permutation routes conflict-free given global
control.

Routing decomposes the permutation's demand multigraph between input and
output switches (an ``n``-regular bipartite multigraph) into ``n`` perfect
matchings — König's edge-colouring theorem guarantees they exist — and
assigns matching ``k`` to middle switch ``k``.  The matchings are found
with Kuhn's augmenting-path algorithm, no external graph library.

Like the Beneš baseline, this is the paper's conceptual foil: one
conflict-free pass for any permutation, but only with offline global
computation, versus the EDN's local digit control plus statistical
blocking.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.core.exceptions import ConfigurationError

__all__ = ["ClosNetwork", "ClosRoute"]


@dataclass(frozen=True)
class ClosRoute:
    """The circuit for one message: input switch -> middle switch -> output switch."""

    source: int
    destination: int
    input_switch: int
    middle_switch: int
    output_switch: int


class ClosNetwork:
    """A rearrangeable ``C(n, m, r)`` Clos network (``m >= n``).

    >>> net = ClosNetwork(n=3, r=4)      # 12 terminals, m defaults to n
    >>> routes = net.route_permutation([4, 1, 8, 0, 11, 2, 7, 10, 3, 6, 9, 5])
    >>> net.verify(routes, [4, 1, 8, 0, 11, 2, 7, 10, 3, 6, 9, 5])
    True
    """

    def __init__(self, n: int, r: int, m: int | None = None):
        if n < 1 or r < 1:
            raise ConfigurationError("Clos parameters n, r must be positive")
        if m is None:
            m = n
        if m < n:
            raise ConfigurationError(
                f"m={m} < n={n}: below the Slepian-Duguid rearrangeability bound"
            )
        self.n = n
        self.r = r
        self.m = m

    @property
    def num_terminals(self) -> int:
        return self.n * self.r

    @property
    def crosspoints(self) -> int:
        """``r*(n*m) + m*(r*r) + r*(m*n)`` crosspoint switches."""
        return 2 * self.r * self.n * self.m + self.m * self.r * self.r

    @property
    def is_strictly_nonblocking(self) -> bool:
        """Clos's 1953 condition: ``m >= 2n - 1``."""
        return self.m >= 2 * self.n - 1

    # ------------------------------------------------------------------

    def route_permutation(self, permutation: Sequence[int]) -> list[ClosRoute]:
        """Conflict-free middle-switch assignment for a full permutation."""
        perm = list(permutation)
        if sorted(perm) != list(range(self.num_terminals)):
            raise ConfigurationError(f"not a permutation of 0..{self.num_terminals - 1}")

        # Demand multigraph: one edge (input switch, output switch) per message.
        demands: list[list[int]] = [[] for _ in range(self.r)]  # terminals per in-switch
        for source in range(self.num_terminals):
            demands[source // self.n].append(source)

        remaining = {s: perm[s] for s in range(self.num_terminals)}
        routes: dict[int, ClosRoute] = {}
        for middle in range(self.n):
            matching = self._perfect_matching(remaining)
            for in_switch, source in matching.items():
                dest = remaining.pop(source)
                routes[source] = ClosRoute(
                    source=source,
                    destination=dest,
                    input_switch=in_switch,
                    middle_switch=middle,
                    output_switch=dest // self.n,
                )
        if remaining:
            raise ConfigurationError("internal error: demands left after n matchings")
        return [routes[s] for s in range(self.num_terminals)]

    def _perfect_matching(self, remaining: dict[int, int]) -> dict[int, int]:
        """One message per input switch such that output switches are distinct.

        Kuhn's augmenting-path algorithm on the bipartite graph whose left
        vertices are input switches and right vertices output switches,
        with an edge per undelivered message.  The demand graph stays
        regular as matchings are peeled off, so a perfect matching always
        exists (Hall/König).
        Returns ``{input_switch: chosen source}``.
        """
        adjacency: list[list[tuple[int, int]]] = [[] for _ in range(self.r)]
        for source, dest in remaining.items():
            adjacency[source // self.n].append((dest // self.n, source))

        match_right: dict[int, tuple[int, int]] = {}  # out switch -> (in switch, source)

        def try_assign(in_switch: int, visited: set[int]) -> bool:
            for out_switch, source in adjacency[in_switch]:
                if out_switch in visited:
                    continue
                visited.add(out_switch)
                if out_switch not in match_right or try_assign(
                    match_right[out_switch][0], visited
                ):
                    match_right[out_switch] = (in_switch, source)
                    return True
            return False

        for in_switch in range(self.r):
            if not try_assign(in_switch, set()):
                raise ConfigurationError(
                    "no perfect matching - demands are not a partial permutation"
                )
        return {in_switch: source for in_switch, source in match_right.values()}

    # ------------------------------------------------------------------

    def verify(self, routes: list[ClosRoute], permutation: Sequence[int]) -> bool:
        """Check the routes realize ``permutation`` without link conflicts."""
        perm = list(permutation)
        if len(routes) != self.num_terminals:
            return False
        used_up: set[tuple[int, int]] = set()    # (input switch, middle)
        used_down: set[tuple[int, int]] = set()  # (middle, output switch)
        for route in routes:
            if perm[route.source] != route.destination:
                return False
            if route.input_switch != route.source // self.n:
                return False
            if route.output_switch != route.destination // self.n:
                return False
            if not 0 <= route.middle_switch < self.m:
                return False
            up = (route.input_switch, route.middle_switch)
            down = (route.middle_switch, route.output_switch)
            if up in used_up or down in used_down:
                return False  # two circuits on one physical link
            used_up.add(up)
            used_down.add(down)
        return True

    def __repr__(self) -> str:
        return f"ClosNetwork(n={self.n}, m={self.m}, r={self.r}: {self.num_terminals} terminals)"
