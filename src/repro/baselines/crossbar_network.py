"""Full crossbar network baseline.

The crossbar is the paper's performance upper bound (Figures 7-8 plot
"Full Crossbar" as the reference curve) and its cost strawman (Section 1:
"crossbars are too costly to use for large networks").  An ``N x N``
crossbar never blocks internally — a request fails only when another
request wins the same output — so its acceptance under uniform traffic is
``PA = (1 - (1 - r/N)^N) / r`` (see
:func:`repro.core.analysis.crossbar_acceptance`), and it routes any
permutation in one cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.analysis import crossbar_acceptance
from repro.core.exceptions import ConfigurationError, LabelError
from repro.sim.batched import validate_demand_matrix
from repro.sim.rng import SeedLike, as_generator

__all__ = ["CrossbarNetwork", "CrossbarCycleResult"]

IDLE = -1


@dataclass
class CrossbarCycleResult:
    """Outcome arrays matching the vectorized-EDN result protocol.

    Holds one cycle (1-D arrays, from :meth:`CrossbarNetwork.route`) or a
    whole batch (2-D ``(batch, n)`` arrays, from
    :meth:`CrossbarNetwork.route_batch`); the aggregate counters sum over
    whatever is held.
    """

    output: np.ndarray
    blocked_stage: np.ndarray  # 0 delivered, 1 blocked at the (only) stage, -1 idle

    @property
    def offered_per_cycle(self) -> np.ndarray:
        """Requests offered per cycle (batched results only)."""
        return (self.blocked_stage != IDLE).sum(axis=-1)

    @property
    def delivered_per_cycle(self) -> np.ndarray:
        """Requests delivered per cycle (batched results only)."""
        return (self.blocked_stage == 0).sum(axis=-1)

    @property
    def num_offered(self) -> int:
        return int((self.blocked_stage != IDLE).sum())

    @property
    def num_delivered(self) -> int:
        return int((self.blocked_stage == 0).sum())

    @property
    def acceptance_ratio(self) -> float:
        offered = self.num_offered
        return 1.0 if offered == 0 else self.num_delivered / offered

    def blocked_stage_histogram(self) -> dict[int, int]:
        blocked = int((self.blocked_stage == 1).sum())
        return {1: blocked} if blocked else {}


class CrossbarNetwork:
    """An ``n_inputs x n_outputs`` crossbar with output contention only.

    Satisfies the same router protocol as
    :class:`~repro.sim.vectorized.VectorizedEDN`, so the Monte-Carlo
    harness and experiment code treat it interchangeably.

    >>> import numpy as np
    >>> xbar = CrossbarNetwork(8)
    >>> res = xbar.route(np.array([3, 3, 1, -1, 0, 5, 5, 5]))
    >>> res.num_delivered      # one winner per contended output
    4
    """

    def __init__(
        self,
        n_inputs: int,
        n_outputs: Optional[int] = None,
        *,
        priority: str = "label",
        seed: SeedLike = None,
    ):
        if n_outputs is None:
            n_outputs = n_inputs
        if n_inputs < 1 or n_outputs < 1:
            raise ConfigurationError("crossbar needs positive terminal counts")
        if priority not in ("label", "random"):
            raise ConfigurationError(f"unknown priority discipline {priority!r}")
        self.n_inputs = n_inputs
        self.n_outputs = n_outputs
        self.priority = priority
        # Default stream for route calls that pass no rng (random priority).
        self._rng = as_generator(seed)

    def route(self, dests: np.ndarray, rng: SeedLike = None) -> CrossbarCycleResult:
        """Grant each contended output to its highest-priority requester.

        ``rng`` accepts anything seed-like (``int``/``SeedSequence``/
        ``Generator``); ``None`` falls back to the constructor's ``seed``
        stream.
        """
        dests = np.asarray(dests, dtype=np.int64)
        if dests.shape != (self.n_inputs,):
            raise LabelError(f"expected shape ({self.n_inputs},), got {dests.shape}")
        live = dests != IDLE
        if live.any():
            lo, hi = int(dests[live].min()), int(dests[live].max())
            if lo < 0 or hi >= self.n_outputs:
                raise LabelError("demand vector contains out-of-range destinations")
        rng = as_generator(rng) if rng is not None else self._rng
        if self.priority == "random" and rng is None:
            raise ConfigurationError(
                "random priority requires an rng (constructor seed or route argument)"
            )

        output = np.full(self.n_inputs, IDLE, dtype=np.int64)
        blocked_stage = np.full(self.n_inputs, IDLE, dtype=np.int64)
        idx = np.flatnonzero(live)
        if idx.size:
            key = dests[idx]
            if self.priority == "label":
                order = np.argsort(key, kind="stable")
            else:
                order = np.lexsort((rng.permutation(idx.size), key))
            sorted_key = key[order]
            first = np.empty(idx.size, dtype=bool)
            first[0] = True
            np.not_equal(sorted_key[1:], sorted_key[:-1], out=first[1:])
            winners = idx[order[first]]
            losers = idx[order[~first]]
            output[winners] = dests[winners]
            blocked_stage[winners] = 0
            blocked_stage[losers] = 1
        return CrossbarCycleResult(output=output, blocked_stage=blocked_stage)

    def route_batch(
        self, dests: np.ndarray, rng: SeedLike = None
    ) -> CrossbarCycleResult:
        """Route a ``(batch, n_inputs)`` demand matrix of independent cycles.

        Returns a :class:`CrossbarCycleResult` whose arrays are
        ``(batch, n_inputs)``-shaped, matching the
        :class:`~repro.sim.batched.BatchedEDN` result protocol (including
        ``offered_per_cycle`` / ``delivered_per_cycle``).  Cycle ``i``
        resolves exactly like ``route(dests[i])``: the output index is
        folded into the contention key with a per-cycle offset, so one
        sort settles every cycle's output contention at once.  Under
        random priority ``rng`` also accepts one generator per cycle (the
        batched-EDN convention); cycle ``i`` then draws its tie-break
        permutation from ``rng[i]``, reproducing ``route(dests[i],
        rng[i])`` bit for bit regardless of chunk size.
        """
        dests, flat, live = validate_demand_matrix(
            dests, self.n_inputs, self.n_outputs
        )
        batch, n = dests.shape
        cycle_rngs = None
        if rng is not None and not isinstance(rng, (int, np.integer)) and not (
            isinstance(rng, (np.random.Generator, np.random.SeedSequence))
        ):
            cycle_rngs = [as_generator(r) for r in rng]
            if len(cycle_rngs) != batch:
                raise ConfigurationError(
                    f"need one generator per cycle: got {len(cycle_rngs)} "
                    f"for batch {batch}"
                )
        else:
            rng = as_generator(rng) if rng is not None else self._rng
            if self.priority == "random" and rng is None:
                raise ConfigurationError(
                    "random priority requires an rng (constructor seed or route argument)"
                )

        output = np.full(batch * n, IDLE, dtype=np.int64)
        blocked_stage = np.full(batch * n, IDLE, dtype=np.int64)
        idx = np.flatnonzero(live)
        if idx.size:
            key = (idx // n) * self.n_outputs + flat[idx]
            if self.priority == "label":
                # Live entries are already in (cycle, input-label) order, so
                # a stable sort on the composite key alone realizes label
                # priority within every (cycle, output) group.
                order = np.argsort(key, kind="stable")
            elif cycle_rngs is not None:
                # Per-cycle tie-break streams: each cycle's contiguous
                # slice of the live frontier draws its own permutation,
                # exactly as the single-cycle path would.
                tie = np.empty(idx.size, dtype=np.int64)
                cyc = idx // n
                boundaries = np.flatnonzero(np.diff(cyc)) + 1
                starts = np.concatenate(([0], boundaries))
                stops = np.concatenate((boundaries, [idx.size]))
                for start, stop in zip(starts, stops):
                    tie[start:stop] = cycle_rngs[cyc[start]].permutation(stop - start)
                order = np.lexsort((tie, key))
            else:
                order = np.lexsort((rng.permutation(idx.size), key))
            sorted_key = key[order]
            first = np.empty(idx.size, dtype=bool)
            first[0] = True
            np.not_equal(sorted_key[1:], sorted_key[:-1], out=first[1:])
            winners = idx[order[first]]
            losers = idx[order[~first]]
            output[winners] = flat[winners]
            blocked_stage[winners] = 0
            blocked_stage[losers] = 1
        return CrossbarCycleResult(
            output=output.reshape(batch, n),
            blocked_stage=blocked_stage.reshape(batch, n),
        )

    def analytic_acceptance(self, r: float) -> float:
        """``PA(r)`` for the square case (requires ``n_inputs == n_outputs``)."""
        if self.n_inputs != self.n_outputs:
            raise ConfigurationError("analytic PA implemented for square crossbars")
        return crossbar_acceptance(self.n_inputs, r)

    def __repr__(self) -> str:
        return f"CrossbarNetwork({self.n_inputs}x{self.n_outputs})"
