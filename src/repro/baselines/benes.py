"""Beneš rearrangeable network with the classical looping algorithm.

The paper's restricted-access discussion builds on Youssef, Alleyne &
Scherson [31], which studies clusters over crossbar, **Clos and Beneš**
fabrics, and its Benes-control references ([15], [16] — Lee, Lenfant).
The Beneš network ``B(n)`` on ``N = 2^n`` terminals is the non-blocking
counterpoint to the EDN: ``2n - 1`` stages of 2x2 switches (a baseline
butterfly back to back with its mirror) that can realize *every*
permutation in a single conflict-free pass — at the price of global,
offline switch control (the looping algorithm below) instead of the EDN's
local digit routing.

Construction used here (recursive): outer input column of N/2 2x2
switches, two half-size Beneš sub-networks (top/bottom), outer output
column.  Input switch ``i`` feeds sub-network 0/1 through its upper/lower
output; symmetric on the output side.  The looping algorithm 2-colours the
constraint cycles so paired terminals (sharing a switch) never use the
same sub-network.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.exceptions import ConfigurationError
from repro.core.labels import ilog2, is_power_of_two

__all__ = ["BenesNetwork"]


class BenesNetwork:
    """An ``N x N`` Beneš network controlled by the looping algorithm.

    >>> net = BenesNetwork(8)
    >>> net.num_stages
    5
    >>> settings = net.route_permutation([3, 7, 0, 1, 5, 2, 6, 4])
    >>> net.verify(settings, [3, 7, 0, 1, 5, 2, 6, 4])
    True
    """

    def __init__(self, n: int):
        if not is_power_of_two(n) or n < 2:
            raise ConfigurationError(f"Benes size must be a power of two >= 2, got {n}")
        self.n = n
        self.order = ilog2(n)

    @property
    def num_stages(self) -> int:
        """``2*log2(N) - 1`` switch columns."""
        return 2 * self.order - 1

    @property
    def num_switches(self) -> int:
        """``(N/2) * (2*log2(N) - 1)`` 2x2 switches."""
        return (self.n // 2) * self.num_stages

    @property
    def crosspoints(self) -> int:
        """4 crosspoints per 2x2 switch."""
        return 4 * self.num_switches

    # ------------------------------------------------------------------

    def route_permutation(self, permutation: Sequence[int]) -> list[list[bool]]:
        """Compute switch settings realizing ``permutation`` conflict-free.

        Returns ``settings[stage][switch]`` with ``True`` = crossed,
        ``False`` = straight, for the flattened ``2*log2(N) - 1`` stages.
        Raises if the input is not a permutation.
        """
        perm = list(permutation)
        if sorted(perm) != list(range(self.n)):
            raise ConfigurationError(f"not a permutation of 0..{self.n - 1}")
        return self._route(perm)

    def _route(self, perm: list[int]) -> list[list[bool]]:
        n = len(perm)
        if n == 2:
            return [[perm[0] == 1]]

        half = n // 2
        # Looping algorithm: 2-colour the constraint graph.  Terminals 2i
        # and 2i+1 share an input switch (must split across sub-networks);
        # likewise destinations 2j and 2j+1 share an output switch.
        sub_of_input = [-1] * n

        inverse = [0] * n
        for i, dest in enumerate(perm):
            inverse[dest] = i

        for start in range(n):
            if sub_of_input[start] != -1:
                continue
            current, colour = start, 0
            while sub_of_input[current] == -1:
                sub_of_input[current] = colour
                partner_out = perm[current] ^ 1          # shares the output switch
                partner_in = inverse[partner_out]        # must take the other colour
                sub_of_input[partner_in] = 1 - colour
                current = partner_in ^ 1                 # shares an input switch
                colour = sub_of_input[partner_in] ^ 1    # so it takes the opposite

        input_settings = []
        output_settings = []
        sub_perms: list[list[int]] = [[0] * half, [0] * half]
        for switch in range(half):
            upper, lower = 2 * switch, 2 * switch + 1
            crossed = sub_of_input[upper] == 1
            input_settings.append(crossed)
            # Sub-network s receives, from this switch, the terminal routed
            # to sub s; it enters sub s at position `switch`.
            for terminal in (upper, lower):
                sub = sub_of_input[terminal]
                dest = perm[terminal]
                sub_perms[sub][switch] = dest // 2
            # Output column: destination pair (2j, 2j+1); the one arriving
            # from sub-network 0 exits the upper sub port.
        for out_switch in range(half):
            upper_dest, lower_dest = 2 * out_switch, 2 * out_switch + 1
            # The source of upper_dest sits in sub-network sub_of_input[...]
            crossed = sub_of_input[inverse[upper_dest]] == 1
            output_settings.append(crossed)

        top = self._route(sub_perms[0])
        bottom = self._route(sub_perms[1])
        middle = [
            top_stage + bottom_stage for top_stage, bottom_stage in zip(top, bottom)
        ]
        return [input_settings] + middle + [output_settings]

    # ------------------------------------------------------------------

    def verify(self, settings: list[list[bool]], permutation: Sequence[int]) -> bool:
        """Trace every terminal through ``settings``; True iff it realizes ``permutation``."""
        trace = self._trace(settings)
        return all(trace[i] == dest for i, dest in enumerate(permutation))

    def _trace(self, settings: list[list[bool]]) -> list[int]:
        """Where each input terminal lands under ``settings``."""
        if self.n == 2:
            crossed = settings[0][0]
            return [1, 0] if crossed else [0, 1]

        half = self.n // 2
        input_settings, output_settings = settings[0], settings[-1]
        middle = settings[1:-1]
        top_settings = [stage[: len(stage) // 2] for stage in middle]
        bottom_settings = [stage[len(stage) // 2 :] for stage in middle]

        sub_net = BenesNetwork(half)
        top_trace = sub_net._trace(top_settings)
        bottom_trace = sub_net._trace(bottom_settings)

        out = [0] * self.n
        for terminal in range(self.n):
            switch, port = divmod(terminal, 2)
            crossed = input_settings[switch]
            sub = port ^ 1 if crossed else port
            landed = top_trace[switch] if sub == 0 else bottom_trace[switch]
            # landed = output switch index within the outer output column.
            out_crossed = output_settings[landed]
            exit_port = sub ^ 1 if out_crossed else sub
            out[terminal] = 2 * landed + exit_port
        return out

    def __repr__(self) -> str:
        return f"BenesNetwork({self.n}x{self.n}, {self.num_stages} stages)"
