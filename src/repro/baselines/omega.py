"""Lawrie's Omega network (the paper's reference [14]).

The omega network on ``N = 2^n`` terminals is ``n`` stages of ``2 x 2``
switches, each stage preceded by a perfect shuffle of the wires — including
a shuffle *before* the first stage, which is where it differs structurally
from our delta construction (whose inputs feed stage 1 directly).  Patel
showed omega is a delta network; here we realize it as the ``EDN(2,2,1,n)``
engine composed with an input shuffle, which doubles as a working example
of the paper's Corollary 1: permuting the inputs of an EDN changes which
source owns a path but never destroys connectivity.
"""

from __future__ import annotations

import numpy as np

from repro.core.analysis import delta_acceptance
from repro.core.config import EDNParams
from repro.core.exceptions import ConfigurationError
from repro.core.labels import ilog2, is_power_of_two
from repro.sim.rng import SeedLike, as_generator
from repro.sim.vectorized import VectorCycleResult, VectorizedEDN

__all__ = ["OmegaNetwork"]

IDLE = -1


class OmegaNetwork:
    """An ``N x N`` omega network (perfect shuffle + 2x2 switches).

    >>> import numpy as np
    >>> net = OmegaNetwork(8)
    >>> res = net.route(np.array([6, -1, -1, -1, -1, -1, -1, -1]))
    >>> res.num_delivered, int(res.output[0])
    (1, 6)
    """

    def __init__(self, n: int, *, priority: str = "label", seed: SeedLike = None):
        if not is_power_of_two(n) or n < 2:
            raise ConfigurationError(f"omega size must be a power of two >= 2, got {n}")
        self.n = n
        self.stages = ilog2(n)
        self.params = EDNParams(2, 2, 1, self.stages)
        self._engine = VectorizedEDN(self.params, priority=priority)
        # Default stream for route calls that pass no rng (random priority).
        self._rng = as_generator(seed)
        # Input shuffle: source s enters the switch column on wire shuffle(s)
        # (one-bit left rotation of the n-bit label).
        idx = np.arange(n, dtype=np.int64)
        self._shuffle = (((idx << 1) | (idx >> (self.stages - 1))) & (n - 1)).astype(np.int64)

    @property
    def n_inputs(self) -> int:
        return self.n

    @property
    def n_outputs(self) -> int:
        return self.n

    def route(self, dests: np.ndarray, rng: SeedLike = None) -> VectorCycleResult:
        """Route one cycle; semantics match the vectorized EDN result.

        ``rng`` accepts anything seed-like (``int``/``SeedSequence``/
        ``Generator``); ``None`` falls back to the constructor's ``seed``
        stream.
        """
        dests = np.asarray(dests, dtype=np.int64)
        if dests.shape != (self.n,):
            raise ConfigurationError(f"expected demand vector of shape ({self.n},)")
        shuffled = np.full(self.n, IDLE, dtype=np.int64)
        shuffled[self._shuffle] = dests
        generator = as_generator(rng) if rng is not None else self._rng
        inner = self._engine.route(shuffled, generator)
        # Re-index outcomes back to original source labels.
        return VectorCycleResult(
            output=inner.output[self._shuffle],
            blocked_stage=inner.blocked_stage[self._shuffle],
        )

    def analytic_acceptance(self, r: float) -> float:
        """Patel's delta recursion with ``a = b = 2`` (input shuffles don't matter)."""
        return delta_acceptance(2, 2, self.stages, r)

    def __repr__(self) -> str:
        return f"OmegaNetwork({self.n}x{self.n}, {self.stages} stages)"
