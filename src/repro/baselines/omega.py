"""Lawrie's Omega network (the paper's reference [14]).

The omega network on ``N = 2^n`` terminals is ``n`` stages of ``2 x 2``
switches, each stage preceded by a perfect shuffle of the wires — including
a shuffle *before* the first stage, which is where it differs structurally
from our delta construction (whose inputs feed stage 1 directly).  Patel
showed omega is a delta network; here the whole topology — including the
input shuffle — is expressed as a compiled
:func:`~repro.sim.stagegraph.omega_graph` routed by the shared batched
kernels, which doubles as a working example of the paper's Corollary 1:
permuting the inputs of an EDN changes which source owns a path but never
destroys connectivity.
"""

from __future__ import annotations

import numpy as np

from repro.core.analysis import delta_acceptance
from repro.core.config import EDNParams
from repro.core.exceptions import ConfigurationError
from repro.core.labels import ilog2, is_power_of_two
from repro.sim.batched import BatchAcceptanceCounts, BatchCycleResult, CompiledStageRouter
from repro.sim.rng import SeedLike, as_generator
from repro.sim.stagegraph import StageGraph, omega_graph
from repro.sim.vectorized import VectorCycleResult

__all__ = ["OmegaNetwork"]

IDLE = -1


class OmegaNetwork:
    """An ``N x N`` omega network (perfect shuffle + 2x2 switches).

    >>> import numpy as np
    >>> net = OmegaNetwork(8)
    >>> res = net.route(np.array([6, -1, -1, -1, -1, -1, -1, -1]))
    >>> res.num_delivered, int(res.output[0])
    (1, 6)
    """

    def __init__(self, n: int, *, priority: str = "label", seed: SeedLike = None):
        if not is_power_of_two(n) or n < 2:
            raise ConfigurationError(f"omega size must be a power of two >= 2, got {n}")
        self.n = n
        self.stages = ilog2(n)
        self.params = EDNParams(2, 2, 1, self.stages)
        self.graph: StageGraph = omega_graph(n)
        self.priority = priority
        self._router = CompiledStageRouter(self.graph, priority=priority)
        # Default stream for route calls that pass no rng (random priority).
        self._rng = as_generator(seed)

    @property
    def n_inputs(self) -> int:
        return self.n

    @property
    def n_outputs(self) -> int:
        return self.n

    def route(self, dests: np.ndarray, rng: SeedLike = None) -> VectorCycleResult:
        """Route one cycle; semantics match the vectorized EDN result.

        ``rng`` accepts anything seed-like (``int``/``SeedSequence``/
        ``Generator``); ``None`` falls back to the constructor's ``seed``
        stream.
        """
        dests = np.asarray(dests, dtype=np.int64)
        if dests.shape != (self.n,):
            raise ConfigurationError(f"expected demand vector of shape ({self.n},)")
        generator = as_generator(rng) if rng is not None else self._rng
        return self._router.route(dests, generator)

    def route_batch(self, dests: np.ndarray, rng=None) -> BatchCycleResult:
        """Route a ``(batch, N)`` demand matrix on the compiled kernels."""
        return self._router.route_batch(dests, rng if rng is not None else self._rng)

    def route_batch_counts(self, dests: np.ndarray, rng=None) -> BatchAcceptanceCounts:
        """Acceptance counts for a batch via the counts-only fast path.

        The omega input shuffle relabels sources but moves no message
        between cycles or stages, so per-cycle offered/delivered counts
        and the blocked-stage histogram equal the inner delta's exactly.
        """
        return self._router.route_batch_counts(
            dests, rng if rng is not None else self._rng
        )

    def preferred_batch(self) -> int:
        return self._router.preferred_batch()

    def analytic_acceptance(self, r: float) -> float:
        """Patel's delta recursion with ``a = b = 2`` (input shuffles don't matter)."""
        return delta_acceptance(2, 2, self.stages, r)

    def __repr__(self) -> str:
        return f"OmegaNetwork({self.n}x{self.n}, {self.stages} stages)"
