"""d-dilated delta networks (the paper's references [28, 29]).

A *d-dilated* delta network replaces every link of an ``a x b`` delta with
``d`` parallel wires: stage-1 switches become ``H(a -> b x d)`` and deeper
stages ``H(a*d -> b x d)``.  Dilation, like EDN capacity, provides
multipath; the paper's Section 1 objection is purely structural:

    "the number of wires between stages in a d-dilated network is d times
    the number of wires of the equivalent stage of an EDN with the same
    number of inputs, resulting in a much less space efficient network."

This module implements the dilated network's wire/crosspoint accounting,
its analytic acceptance (same hyperbar ``E(r)`` machinery as the EDN, with
the conventional assumption that all messages surviving to an output bundle
are delivered — each output terminal is a ``d``-wire port), and — via
:meth:`DilatedDelta.stage_graph` / :meth:`DilatedDelta.router` — its
cycle-level simulation on the shared compiled batched kernels, so the
paper's structural objection can be weighed against *measured* acceptance
(the test suite cross-checks the analytic chain against Monte-Carlo at
matched rates).  The ``eq2_eq3`` benchmark reproduces the
d-times-the-wires comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.analysis import expected_accepted
from repro.core.exceptions import ConfigurationError
from repro.core.labels import is_power_of_two

__all__ = ["DilatedDelta"]


@dataclass(frozen=True)
class DilatedDelta:
    """Structural and analytic model of a d-dilated ``a^l x b^l`` delta.

    Attributes: ``a`` x ``b`` the underlying switch shape, ``l`` stages,
    ``d`` the dilation factor.  Inputs are single wires (``a^l`` of them);
    every internal bundle and every output port is ``d`` wires wide.
    """

    a: int
    b: int
    l: int
    d: int

    def __post_init__(self) -> None:
        for name, value in (("a", self.a), ("b", self.b), ("d", self.d)):
            if not is_power_of_two(value):
                raise ConfigurationError(f"dilated-delta parameter {name}={value} must be a power of two")
        if self.l < 1:
            raise ConfigurationError(f"need at least one stage, got l={self.l}")

    @property
    def n_inputs(self) -> int:
        return self.a**self.l

    @property
    def n_outputs(self) -> int:
        """Output *ports*; each port is a bundle of ``d`` wires."""
        return self.b**self.l

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    def switches_in_stage(self, i: int) -> int:
        """Switch count of stage ``i`` (same as the underlying delta)."""
        if not 1 <= i <= self.l:
            raise ConfigurationError(f"stage {i} out of range 1..{self.l}")
        return self.a ** (self.l - i) * self.b ** (i - 1)

    def wires_after_stage(self, i: int) -> int:
        """Wires leaving stage ``i``: ``a^(l-i) * b^i`` bundles of ``d``."""
        if not 0 <= i <= self.l:
            raise ConfigurationError(f"stage {i} out of range 0..{self.l}")
        if i == 0:
            return self.n_inputs  # inputs are single wires
        return self.a ** (self.l - i) * self.b**i * self.d

    def wire_cost(self) -> int:
        """Total wires: inputs + interstage bundles + output bundles.

        The interstage boundaries (``i = 1..l-1``) each carry ``d`` times
        the wires of the underlying delta; the ``i = l`` term is the output
        bundles.
        """
        total = self.n_inputs
        for i in range(1, self.l + 1):
            total += self.wires_after_stage(i)
        return total

    def crosspoint_cost(self) -> int:
        """Crosspoints: stage 1 is ``H(a -> b x d)``, deeper stages ``H(ad -> b x d)``."""
        total = self.switches_in_stage(1) * self.a * self.b * self.d
        for i in range(2, self.l + 1):
            total += self.switches_in_stage(i) * (self.a * self.d) * self.b * self.d
        return total

    # ------------------------------------------------------------------
    # Simulation (the compiled stage-graph core)
    # ------------------------------------------------------------------

    def stage_graph(self):
        """This topology as a :class:`~repro.sim.stagegraph.StageGraph`.

        Stage 1 is ``H(a -> b x d)``, deeper stages ``H(a*d -> b x d)``,
        interstage wiring the base delta's permutation lifted over the
        ``d`` lane bits, and every output terminal a ``d``-wide port.
        """
        from repro.sim.stagegraph import dilated_graph

        return dilated_graph(self.a, self.b, self.l, self.d)

    def router(self, *, priority: str = "label"):
        """A batched router over this topology (plan-cached compiled kernels)."""
        from repro.sim.batched import CompiledStageRouter

        return CompiledStageRouter(self.stage_graph(), priority=priority)

    # ------------------------------------------------------------------
    # Performance
    # ------------------------------------------------------------------

    def analytic_acceptance(self, r: float) -> float:
        """``PA(r)`` via the hyperbar chain.

        Stage 1 sees per-wire rate ``r`` on ``a`` inputs; stage ``i > 1``
        sees the attenuated rate on ``a*d`` inputs.  Survivors of stage
        ``l`` are delivered (each output is a ``d``-wide port, so there is
        no final contention step beyond the bundle capacity already
        applied).
        """
        if r == 0.0:
            return 1.0
        rate = expected_accepted(self.a, self.b, self.d, r) / self.d
        for _ in range(self.l - 1):
            rate = expected_accepted(self.a * self.d, self.b, self.d, rate) / self.d
        delivered = self.b**self.l * self.d * rate
        generated = self.n_inputs * r
        return delivered / generated

    def __str__(self) -> str:
        return f"DilatedDelta(a={self.a}, b={self.b}, l={self.l}, d={self.d})"
