"""Cycle simulator of permutation routing on RA-EDN systems (Section 5.1).

Implements the paper's operational loop exactly:

1. every cluster with undelivered messages selects one PE (schedule);
2. the selected destination addresses are split into header ``x`` (target
   cluster — routed by the network) and trailer ``y`` (target local PE —
   used only after arrival, so it never causes network conflicts);
3. headers are offered to the ``EDN(bc, b, c, l)``; blocked messages stay
   pending, delivered ones retire;
4. repeat until every message is delivered.

The simulator reports the cycle count per permutation, the drained-per-
cycle trajectory, and summary statistics over many random permutations —
the quantities the Section 5 worked example predicts analytically
(``T ≈ q/PA(1) + J``).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.core.exceptions import ConfigurationError, ScheduleError

if TYPE_CHECKING:
    from repro.api.spec import RunConfig
from repro.sim.batched import BatchedEDN
from repro.sim.rng import SeedLike, make_rng, spawn_keys
from repro.sim.stats import RunningStats
from repro.sim.vectorized import VectorizedEDN
from repro.simd.ra_edn import RAEDNSystem
from repro.simd.schedule import RandomSchedule, Schedule

__all__ = ["PermutationRun", "PermutationTimeStats", "RAEDNSimulator"]

#: Distinguishes "argument not passed" from an explicit ``None`` seed.
_UNSET = object()


@dataclass
class PermutationRun:
    """Outcome of draining one permutation: cycle count and per-cycle deliveries."""

    cycles: int
    delivered_per_cycle: list[int]

    @property
    def total_delivered(self) -> int:
        return sum(self.delivered_per_cycle)


@dataclass
class PermutationTimeStats:
    """Aggregate over many permutations (mean/CI of cycles to completion)."""

    runs: int
    cycles: RunningStats

    @property
    def mean_cycles(self) -> float:
        return self.cycles.mean


class RAEDNSimulator:
    """Simulates SIMD permutation routing on an :class:`RAEDNSystem`.

    >>> sim = RAEDNSimulator(RAEDNSystem(4, 2, 1, 4))   # 8 ports x 4 PEs
    >>> run = sim.route_permutation(seed=0)
    >>> run.total_delivered == sim.system.num_pes
    True
    """

    def __init__(
        self,
        system: RAEDNSystem,
        *,
        schedule: Schedule | None = None,
        priority: str = "label",
    ):
        self.system = system
        self.schedule = schedule if schedule is not None else RandomSchedule()
        self.network = VectorizedEDN(system.network_params, priority=priority)
        # Batched sibling for the side-by-side (multi-run) drain path.
        self.batched_network = BatchedEDN(system.network_params, priority=priority)

    def route_permutation(
        self,
        permutation: np.ndarray | None = None,
        *,
        seed: int | None = 0,
        max_cycles: int | None = None,
    ) -> PermutationRun:
        """Drain one permutation of all ``N`` PEs; return the cycle count.

        ``permutation[i]`` is the destination PE (global label) of the
        message originating at PE ``i``; ``None`` draws a uniform random
        permutation.  ``max_cycles`` guards against livelock (default:
        generous multiple of the analytic expectation).
        """
        sys = self.system
        rng = make_rng(seed)
        n = sys.num_pes
        if permutation is None:
            permutation = rng.permutation(n)
        else:
            permutation = np.asarray(permutation, dtype=np.int64)
            if sorted(permutation.tolist()) != list(range(n)):
                raise ConfigurationError(f"not a permutation of 0..{n - 1}")
        if max_cycles is None:
            max_cycles = 100 * sys.q + 1_000

        # dest_cluster[x, y] = header digit of PE y in cluster x.
        dest_cluster = (permutation // sys.q).reshape(sys.num_ports, sys.q)
        pending = np.ones((sys.num_ports, sys.q), dtype=bool)
        delivered_per_cycle: list[int] = []

        for _cycle in range(max_cycles):
            if not pending.any():
                break
            choice = self.schedule.select(pending, rng)
            self._check_schedule(choice, pending)
            offering = choice >= 0
            demands = np.full(sys.num_ports, -1, dtype=np.int64)
            rows = np.flatnonzero(offering)
            demands[rows] = dest_cluster[rows, choice[rows]]
            result = self.network.route(demands, rng)
            winners = rows[result.blocked_stage[rows] == 0]
            pending[winners, choice[winners]] = False
            delivered_per_cycle.append(int(winners.size))
        else:
            raise ConfigurationError(
                f"permutation did not drain within {max_cycles} cycles"
            )

        return PermutationRun(cycles=len(delivered_per_cycle), delivered_per_cycle=delivered_per_cycle)

    def measure(
        self,
        *,
        runs: int = 10,
        seed: SeedLike = _UNSET,
        max_cycles: int | None = None,
        batch: int | None = None,
        config: "RunConfig | None" = None,
    ) -> PermutationTimeStats:
        """Drain ``runs`` random permutations; aggregate cycle counts.

        ``batch`` selects the engine: ``None`` (default) drains runs one
        at a time through :meth:`route_permutation` (the historical,
        seed-stable path); an integer drains up to ``batch`` independent
        permutations *side by side* through the batched network — each
        network cycle routes one demand matrix of shape ``(active_runs,
        ports)``, and a run's row retires as soon as its permutation
        drains.  Both paths spawn per-run streams positionally from
        ``seed`` (see :mod:`repro.sim.rng`), so a given ``(seed, batch)``
        is fully reproducible.

        ``seed`` and ``batch`` may also arrive via a
        :class:`repro.api.RunConfig` (``config``); set config fields win
        (the facade-wide precedence rule), keywords act as defaults, and
        an unset seed falls back to the historical default ``0``.
        """
        if config is not None:
            batch = config.batch if config.batch is not None else batch
            if config.seed is not None:
                seed = config.seed
        if seed is _UNSET:
            seed = 0
        if runs < 1:
            raise ConfigurationError("need at least one run")
        acc = RunningStats()
        if batch is None:
            for child in spawn_keys(seed, runs):
                run = self.route_permutation(seed=child, max_cycles=max_cycles)
                acc.push(run.cycles)
        else:
            if batch < 1:
                raise ConfigurationError(f"batch must be >= 1, got {batch}")
            for cycles in self._drain_batched(runs, seed, max_cycles, batch):
                acc.push(cycles)
        return PermutationTimeStats(runs=runs, cycles=acc)

    def _drain_batched(
        self, runs: int, seed: SeedLike, max_cycles: int | None, batch: int
    ) -> np.ndarray:
        """Cycle counts of ``runs`` random permutations, drained in groups.

        Child streams ``0..runs-1`` draw each run's permutation *and* its
        schedule choices (mirroring :meth:`route_permutation`'s single
        stream per run); every run also gets its *own clone* of the
        schedule, so stateful schedules (round-robin cursors) keep true
        per-run semantics instead of sharing state across interleaved
        runs, and ``_check_schedule`` still applies.  Child ``runs``
        drives network contention under random priority.  Each cycle the
        active runs' selections stack into one ``(active, ports)`` demand
        matrix for :meth:`~repro.sim.batched.BatchedEDN.route_batch` —
        the network, not the scheduling, is the hot loop this batches.
        """
        sys = self.system
        n = sys.num_pes
        ports, q = sys.num_ports, sys.q
        if max_cycles is None:
            max_cycles = 100 * q + 1_000
        *run_keys, engine_key = spawn_keys(seed, runs + 1)
        engine_rng = make_rng(engine_key)
        cycle_counts = np.zeros(runs, dtype=np.int64)

        for start in range(0, runs, batch):
            group = range(start, min(start + batch, runs))
            run_rngs = [make_rng(run_keys[i]) for i in group]
            run_schedules = [copy.deepcopy(self.schedule) for _ in group]
            perms = np.stack([rng.permutation(n) for rng in run_rngs])
            dest_cluster = (perms // q).reshape(len(group), ports, q)
            pending = np.ones((len(group), ports, q), dtype=bool)
            active = np.arange(len(group))
            cycle = 0
            while active.size:
                cycle += 1
                if cycle > max_cycles:
                    raise ConfigurationError(
                        f"permutation did not drain within {max_cycles} cycles"
                    )
                choice = np.stack(
                    [
                        run_schedules[run].select(pending[run], run_rngs[run])
                        for run in active
                    ]
                )
                for row, run in enumerate(active):
                    self._check_schedule(choice[row], pending[run])
                run_idx, port_idx = np.nonzero(choice >= 0)
                demands = np.full((active.size, ports), -1, dtype=np.int64)
                selected = choice[run_idx, port_idx]
                demands[run_idx, port_idx] = dest_cluster[
                    active[run_idx], port_idx, selected
                ]
                result = self.batched_network.route_batch(demands, engine_rng)
                won = result.blocked_stage[run_idx, port_idx] == 0
                pending[active[run_idx[won]], port_idx[won], selected[won]] = False
                drained = ~pending[active].any(axis=(1, 2))
                if drained.any():
                    cycle_counts[start + active[drained]] = cycle
                    active = active[~drained]
        return cycle_counts

    @staticmethod
    def _check_schedule(choice: np.ndarray, pending: np.ndarray) -> None:
        selected = choice >= 0
        rows = np.flatnonzero(selected)
        if rows.size and not pending[rows, choice[rows]].all():
            raise ScheduleError("schedule selected a PE with no pending message")
        empty = ~pending.any(axis=1)
        if (selected & empty).any():
            raise ScheduleError("schedule selected from an empty cluster")
