"""Section 5: EDNs as restricted-access routers in SIMD machines.

* :mod:`repro.simd.ra_edn` — the RA-EDN system abstraction (clusters of
  PEs sharing network ports, Figure 12);
* :mod:`repro.simd.schedule` — per-cluster message schedules (the paper's
  random schedule plus deterministic ablations);
* :mod:`repro.simd.analytic` — the expected permutation-routing time model
  (``T = q/PA(1) + J``);
* :mod:`repro.simd.simulator` — the cycle-accurate drain simulator;
* :mod:`repro.simd.maspar` — the MasPar MP-1 router configuration.
"""

from repro.simd.analytic import DrainModel, expected_permutation_time
from repro.simd.maspar import MASPAR_MP1_PES, maspar_family, maspar_mp1
from repro.simd.ra_edn import RAEDNSystem
from repro.simd.schedule import (
    LowestIndexSchedule,
    RandomSchedule,
    RoundRobinSchedule,
    Schedule,
)
from repro.simd.simulator import PermutationRun, PermutationTimeStats, RAEDNSimulator

__all__ = [
    "RAEDNSystem",
    "Schedule",
    "RandomSchedule",
    "RoundRobinSchedule",
    "LowestIndexSchedule",
    "DrainModel",
    "expected_permutation_time",
    "RAEDNSimulator",
    "PermutationRun",
    "PermutationTimeStats",
    "maspar_mp1",
    "maspar_family",
    "MASPAR_MP1_PES",
]
