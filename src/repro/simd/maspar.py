"""The MasPar MP-1 router configuration (paper, Sections 5-6).

The paper's real-machine anchor: "The router network of the MasPar MP-1
computer with 16K PEs can [be] shown to be logically equivalent to the
RA-EDN(16,4,2,16)" — 1024 clusters of 16 PEs sharing a square
``EDN(64, 16, 4, 2)`` (1024 ports), with hyperbar switches
``H(64 -> 16 x 4)``.

We have no MasPar hardware; per the reproduction's substitution policy the
configuration below drives the cycle-accurate RA-EDN simulator instead,
which realizes the identical switch semantics, schedule, and cycle
definition the paper analyzes.  Scaled variants (1K PEs at ``l = 1``, 256K
PEs at ``l = 3``) extrapolate the same family for scaling studies; only
the 16K point is a documented machine.
"""

from __future__ import annotations

from repro.core.exceptions import ConfigurationError
from repro.simd.ra_edn import RAEDNSystem

__all__ = ["maspar_mp1", "maspar_family", "MASPAR_MP1_PES"]

MASPAR_MP1_PES = 16_384

# PE count -> stage count of the EDN(64, 16, 4, l) family with 16-PE clusters.
_FAMILY_STAGES = {1_024: 1, 16_384: 2, 262_144: 3}


def maspar_mp1() -> RAEDNSystem:
    """The documented 16K-PE MasPar MP-1 router: ``RA-EDN(16, 4, 2, 16)``.

    >>> system = maspar_mp1()
    >>> system.num_pes, system.num_ports, system.q
    (16384, 1024, 16)
    """
    return RAEDNSystem(b=16, c=4, l=2, q=16)


def maspar_family(n_pes: int) -> RAEDNSystem:
    """A member of the MP-1 router family sized to ``n_pes`` PEs.

    Supported points: 1K (``l = 1``), 16K (``l = 2``, the real MP-1), and
    256K (``l = 3``, a scale-up extrapolation).  Intermediate machine sizes
    existed commercially but change the cluster/port ratio, which the paper
    does not document; we expose only the clean family members.
    """
    try:
        stages = _FAMILY_STAGES[n_pes]
    except KeyError:
        raise ConfigurationError(
            f"no RA-EDN(16,4,l,16) family member with {n_pes} PEs; "
            f"supported sizes: {sorted(_FAMILY_STAGES)}"
        ) from None
    return RAEDNSystem(b=16, c=4, l=stages, q=16)
