"""Analytic permutation-routing time for RA-EDN systems (paper, Section 5).

The paper's model of draining a random permutation of ``N = p*q`` messages
through the ``p``-port network with a random schedule:

* while clusters still hold multiple undelivered messages, every input
  port is busy, so the offered rate is ``r = 1`` and each cycle delivers a
  ``PA(1)`` fraction; the *head phase* — getting down to about one
  undelivered message per cluster — therefore takes ``q / PA(1)`` cycles;
* the *tail phase* then drains the leftovers: with ``r_0 = 1``, the
  leftover per-port rate follows ``r_{j+1} = (1 - PA(r_j)) * r_j``; once
  ``r_j * p < 1`` (less than one undelivered message system-wide in
  expectation) one final cycle flushes the rest.  The tail cost ``J``
  counts those drain iterations **plus the flush cycle**, which is the
  convention that reproduces the paper's worked example:
  RA-EDN(16,4,2,16) has ``PA(1) = 0.544``, ``J = 5``, and expected time
  ``16 / 0.544 + 5 ≈ 34.4`` network cycles.

Expected total: ``T = q / PA(1) + J``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.analysis import acceptance_probability
from repro.core.exceptions import ConvergenceError
from repro.simd.ra_edn import RAEDNSystem

__all__ = ["DrainModel", "expected_permutation_time"]


@dataclass(frozen=True)
class DrainModel:
    """The paper's expected-time decomposition for one RA-EDN system.

    Attributes
    ----------
    pa_full_load:
        ``PA(1)`` of the network.
    head_cycles:
        ``q / PA(1)`` — cycles until clusters hold ~one leftover each.
    tail_rates:
        ``[r_1, r_2, ...]`` leftover rates from the drain recursion, up to
        and including the first ``r_j`` with ``r_j * p < 1``.
    tail_cycles:
        ``J`` — drain iterations plus the final flush cycle.
    """

    system: RAEDNSystem
    pa_full_load: float
    head_cycles: float
    tail_rates: tuple[float, ...]
    tail_cycles: int

    @property
    def expected_cycles(self) -> float:
        """``T = q / PA(1) + J``."""
        return self.head_cycles + self.tail_cycles


def expected_permutation_time(system: RAEDNSystem, *, max_tail: int = 10_000) -> DrainModel:
    """Evaluate the Section 5 drain model for ``system``."""
    params = system.network_params
    p_ports = system.num_ports
    pa1 = acceptance_probability(params, 1.0)

    rates: list[float] = []
    rate = 1.0
    for _ in range(max_tail):
        rate = (1.0 - acceptance_probability(params, rate)) * rate
        rates.append(rate)
        if rate * p_ports < 1.0:
            break
    else:
        raise ConvergenceError(
            f"drain recursion did not fall below 1/p within {max_tail} iterations"
        )

    return DrainModel(
        system=system,
        pa_full_load=pa1,
        head_cycles=system.q / pa1,
        tail_rates=tuple(rates),
        tail_cycles=len(rates) + 1,  # drain iterations + one flush cycle
    )
