"""Restricted Access EDN systems (paper, Section 5.1, Figure 12).

Massively parallel SIMD machines pack many processing elements (PEs) per
chip, but pin limits mean only a subset can reach the router at once.  The
*RA-EDN* abstraction: ``p`` clusters of ``q`` PEs each; cluster ``i`` owns
exactly one network input port ``I_i`` and one output port ``O_i`` of an
``EDN(bc, b, c, l)`` (square: ``p = b^l * c`` ports).  Every PE carries a
global 2-digit label ``xy`` — PE ``y`` of cluster ``x`` — with decimal
label ``x*q + y``.  (The paper prints ``xp + y``, a typo: ``x`` ranges over
``p`` clusters and ``y`` over ``q`` locals, so the mixed-radix value is
``x*q + y``; the worked example is unaffected.)

Routing a permutation ``f`` of all ``N = p*q`` PEs takes at least ``q``
network cycles (one message per cluster per cycle); Section 5's analytic
drain model and the cycle simulator live in :mod:`repro.simd.analytic` and
:mod:`repro.simd.simulator`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import EDNParams
from repro.core.exceptions import ConfigurationError, LabelError

__all__ = ["RAEDNSystem"]


@dataclass(frozen=True)
class RAEDNSystem:
    """Parameters of an ``RA-EDN(b, c, l, q)`` system.

    ``b, c, l`` shape the square interconnection network ``EDN(bc, b, c, l)``
    with ``p = b^l * c`` ports; ``q`` is the cluster size (PEs per port).
    The MasPar MP-1 with 16K PEs is ``RA-EDN(16, 4, 2, 16)`` (paper,
    Section 6).
    """

    b: int
    c: int
    l: int
    q: int

    def __post_init__(self) -> None:
        if self.q < 1:
            raise ConfigurationError(f"cluster size must be positive, got q={self.q}")
        # Network validity (powers of two etc.) is enforced by EDNParams.
        _ = self.network_params

    @property
    def network_params(self) -> EDNParams:
        """The square ``EDN(bc, b, c, l)`` connecting the cluster ports."""
        return EDNParams(self.b * self.c, self.b, self.c, self.l)

    @property
    def num_ports(self) -> int:
        """``p = b^l * c`` cluster ports (network inputs == outputs)."""
        return self.b**self.l * self.c

    @property
    def num_pes(self) -> int:
        """``N = p * q`` processing elements."""
        return self.num_ports * self.q

    # ------------------------------------------------------------------
    # PE labelling
    # ------------------------------------------------------------------

    def pe_label(self, cluster: int, local: int) -> int:
        """Global decimal label of PE ``local`` in ``cluster``: ``cluster*q + local``."""
        if not 0 <= cluster < self.num_ports:
            raise LabelError(f"cluster {cluster} out of range 0..{self.num_ports - 1}")
        if not 0 <= local < self.q:
            raise LabelError(f"local PE index {local} out of range 0..{self.q - 1}")
        return cluster * self.q + local

    def pe_location(self, label: int) -> tuple[int, int]:
        """Inverse of :meth:`pe_label`: ``(cluster, local)`` of a global label."""
        if not 0 <= label < self.num_pes:
            raise LabelError(f"PE label {label} out of range 0..{self.num_pes - 1}")
        return divmod(label, self.q)

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"RA-EDN({self.b},{self.c},{self.l},{self.q}): "
            f"{self.num_ports} clusters x {self.q} PEs = {self.num_pes} PEs "
            f"over {self.network_params}"
        )

    def __str__(self) -> str:
        return f"RA-EDN({self.b},{self.c},{self.l},{self.q})"
