"""Cluster schedules for restricted-access routing (paper, Section 5.1).

Each network cycle, every cluster with undelivered messages selects exactly
one of its PEs to offer to the network.  Computing a conflict-free schedule
is expensive (the paper cites [31]), so the paper assumes a *random*
schedule — "at every cycle, any processor whose message is not yet
delivered is chosen from each cluster at random" — and notes that a random
schedule on a fixed permutation is equivalent to a fixed schedule on a
random permutation.

Besides the paper's random schedule this module provides a deterministic
round-robin and a lowest-index-first schedule, used by the scheduling
ablation to show the drain time is insensitive to the choice under random
permutations (as the equivalence argument predicts).
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import ScheduleError

__all__ = ["Schedule", "RandomSchedule", "RoundRobinSchedule", "LowestIndexSchedule"]

NO_SELECTION = -1


class Schedule:
    """Base class: pick one pending PE per cluster per cycle.

    ``select`` receives ``pending`` — a boolean matrix ``(clusters, q)``
    marking undelivered messages — and returns, per cluster, the local PE
    index selected this cycle (``-1`` for clusters with nothing pending).
    """

    def select(self, pending: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        raise NotImplementedError

    @staticmethod
    def _validate(pending: np.ndarray) -> None:
        if pending.ndim != 2 or pending.dtype != bool:
            raise ScheduleError("pending must be a 2-D boolean (clusters x q) matrix")


class RandomSchedule(Schedule):
    """The paper's schedule: uniform choice among each cluster's pending PEs."""

    def select(self, pending: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        self._validate(pending)
        clusters, q = pending.shape
        # Weight pending entries with random keys; argmax picks a uniform
        # pending PE per row without a Python-level loop.
        keys = rng.random((clusters, q))
        keys[~pending] = -1.0
        choice = np.argmax(keys, axis=1)
        choice[~pending.any(axis=1)] = NO_SELECTION
        return choice


class RoundRobinSchedule(Schedule):
    """Cycle deterministically through local PE indices, skipping delivered ones."""

    def __init__(self) -> None:
        self._cursor: np.ndarray | None = None

    def select(self, pending: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        self._validate(pending)
        clusters, q = pending.shape
        if self._cursor is None or self._cursor.shape != (clusters,):
            self._cursor = np.zeros(clusters, dtype=np.int64)
        choice = np.full(clusters, NO_SELECTION, dtype=np.int64)
        for cluster in range(clusters):
            if not pending[cluster].any():
                continue
            for offset in range(q):
                local = (self._cursor[cluster] + offset) % q
                if pending[cluster, local]:
                    choice[cluster] = local
                    self._cursor[cluster] = (local + 1) % q
                    break
        return choice


class LowestIndexSchedule(Schedule):
    """Always offer the lowest-indexed pending PE (a worst-case-bias probe)."""

    def select(self, pending: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        self._validate(pending)
        choice = np.argmax(pending, axis=1).astype(np.int64)
        choice[~pending.any(axis=1)] = NO_SELECTION
        return choice
