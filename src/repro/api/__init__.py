"""repro.api — the unified routing facade.

The canonical way to construct and drive *any* network in the repository:

1. describe the network with a :class:`NetworkSpec` (topology kind + shape,
   disciplines, optional wire faults);
2. describe the run with a :class:`RunConfig` (cycles, seed, jobs, batch,
   backend, confidence);
3. :func:`build_router` turns the spec into a :class:`Router` whose
   canonical method routes ``(batch, N)`` demand matrices;
4. :func:`measure` goes straight from spec to an acceptance measurement.

Every engine in the repo sits behind the same protocol — the reference
per-message EDN, the vectorized and batched array EDNs, fault-injected
networks, and the delta/omega/crossbar/Clos/Beneš baselines — selected by
the string-keyed backend registry (``backend="auto"`` picks batched
engines where available and falls back to the per-cycle loop).

Quickstart::

    import numpy as np
    from repro.api import NetworkSpec, RunConfig, build_router, measure

    spec = NetworkSpec.edn(16, 4, 4, 2)          # 64x64 EDN
    router = build_router(spec)                  # batched engine, auto-picked
    result = router.route_batch(np.tile(np.arange(64), (8, 1)))
    print(result.delivered_per_cycle)

    # One-liner comparisons across topologies:
    for s in (spec, NetworkSpec.delta(8, 8, 2), NetworkSpec.crossbar(64),
              NetworkSpec.clos(8, 8), NetworkSpec.benes(64)):
        print(s.label, measure(s, RunConfig(cycles=100, seed=0)).point)

    # ... and across workloads (specs from the repro.workloads registry):
    for w in ("uniform", "hotspot:0.1", "bitrev", "bursty:on=8,off=24"):
        print(w, measure(spec, RunConfig(cycles=100, seed=0, traffic=w)).point)
"""

import importlib

# Exports resolve lazily (PEP 562): the specs live in the leaf module
# ``repro.api.spec``, which the sim/experiments layers import without
# paying for the router adapters and every baseline engine that
# ``repro.api.registry``/``router``/``measure`` pull in.
_EXPORTS = {
    "NetworkSpec": "spec",
    "RunConfig": "spec",
    "TOPOLOGY_KINDS": "spec",
    "Router": "router",
    "PerCycleRouter": "router",
    "ReferenceEDNRouter": "router",
    "RearrangeableRouter": "router",
    "Backend": "registry",
    "BACKENDS": "registry",
    "AUTO_PREFERENCE": "registry",
    "register_backend": "registry",
    "available_backends": "registry",
    "resolve_backend": "registry",
    "build_router": "registry",
    "measure": "measure",
}


def __getattr__(name: str):
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    value = getattr(importlib.import_module(f"repro.api.{module_name}"), name)
    globals()[name] = value  # cache: subsequent lookups skip __getattr__
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_EXPORTS))


__all__ = [
    "NetworkSpec",
    "RunConfig",
    "TOPOLOGY_KINDS",
    "Router",
    "PerCycleRouter",
    "ReferenceEDNRouter",
    "RearrangeableRouter",
    "Backend",
    "BACKENDS",
    "AUTO_PREFERENCE",
    "register_backend",
    "available_backends",
    "resolve_backend",
    "build_router",
    "measure",
]
