"""Job and result dataclasses for the simulation service.

The service layer (:mod:`repro.serve`) moves *measurement cells* between
processes and machines: one cell is "measure this :class:`NetworkSpec`
under this :class:`RunConfig`" — exactly the unit every Monte-Carlo
experiment grid is built from.  This module defines that unit next to the
specs themselves so the API layer owns the contract:

* :class:`SweepCell` — a frozen ``(spec, config)`` pair with a canonical
  JSON payload (:meth:`SweepCell.payload` / :meth:`SweepCell.from_payload`)
  and a *content key* (:meth:`SweepCell.key`): a SHA-256 digest over every
  field that determines the measurement's numbers (topology kind, shape,
  disciplines, fault set, cycles, seed, batch, confidence, rel_err,
  traffic, retry, backend).  Equal submissions — from any client, in any
  order — hash equal, which is what the server's result cache and
  in-flight coalescing key on.
* :class:`CellResult` — the measurement plus service metadata (content
  key, whether it was a cache hit, the worker pid that computed it).
* :func:`measure_cell` — the one executable definition of a cell, used
  identically by the inline path (:meth:`ParallelSweep.map_cells`), the
  service workers, and the bit-identity tests, so "service == inline"
  holds by construction.

Seeds cross the wire losslessly: ``int``/``None`` directly, and
``numpy.random.SeedSequence`` via its ``(entropy, spawn_key)`` pair — the
positional spawn scheme every sweep uses (:mod:`repro.sim.rng`), so a
service-backed grid reproduces the inline grid bit for bit.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.api.spec import NetworkSpec, RunConfig
from repro.core.exceptions import ConfigurationError
from repro.core.faults import WireFault

if TYPE_CHECKING:
    from repro.sim.montecarlo import AcceptanceMeasurement

__all__ = [
    "SweepCell",
    "CellResult",
    "measure_cell",
    "measurement_to_payload",
    "measurement_from_payload",
    "seed_to_payload",
    "seed_from_payload",
]

#: RunConfig fields folded into the content key — exactly the inputs that
#: determine a measurement's numbers.  Execution-only knobs (``jobs``,
#: ``shard_timeout``, ``service``) are deliberately absent: they change
#: where a cell runs, never what it returns.
_KEYED_CONFIG_FIELDS = (
    "cycles",
    "seed",
    "batch",
    "backend",
    "confidence",
    "rel_err",
    "traffic",
    "retry",
    "buffer_depth",
)


def seed_to_payload(seed) -> object:
    """A JSON-safe encoding of a :data:`~repro.sim.rng.SeedLike` seed.

    ``int`` and ``None`` pass through; a ``SeedSequence`` becomes its
    ``{"entropy", "spawn_key"}`` pair (the values that fully determine its
    stream and all positional children).  Generators carry hidden mutable
    state and are rejected — spawn keys from the master seed instead.
    """
    if seed is None or isinstance(seed, int):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        entropy = seed.entropy
        if isinstance(entropy, np.integer):
            entropy = int(entropy)
        elif entropy is not None and not isinstance(entropy, int):
            entropy = [int(v) for v in entropy]
        return {"entropy": entropy, "spawn_key": [int(v) for v in seed.spawn_key]}
    raise ConfigurationError(
        f"cannot serialize seed of type {type(seed).__name__} for the service; "
        "use an int, None, or a SeedSequence (e.g. from spawn_keys)"
    )


def seed_from_payload(payload) -> object:
    """Invert :func:`seed_to_payload`."""
    if payload is None or isinstance(payload, int):
        return payload
    entropy = payload["entropy"]
    if isinstance(entropy, list):
        entropy = [int(v) for v in entropy]
    return np.random.SeedSequence(
        entropy=entropy, spawn_key=tuple(int(v) for v in payload["spawn_key"])
    )


@dataclass(frozen=True)
class SweepCell:
    """One unit of service work: measure ``spec`` under ``config``.

    >>> cell = SweepCell(NetworkSpec.edn(16, 4, 4, 2),
    ...                  RunConfig(cycles=20, seed=0))
    >>> cell == SweepCell.from_payload(cell.payload())
    True
    >>> len(cell.key())
    64
    """

    spec: NetworkSpec
    config: RunConfig

    def payload(self) -> dict:
        """The canonical JSON-safe dict (round-trips via :meth:`from_payload`)."""
        retry = self.config.retry
        return {
            "spec": {
                "kind": self.spec.kind,
                "shape": list(self.spec.shape),
                "priority": self.spec.priority,
                "wire_policy": self.spec.wire_policy,
                "faults": [
                    [f.stage, f.switch, f.local_wire] for f in self.spec.faults
                ],
            },
            "config": {
                "cycles": self.config.cycles,
                "seed": seed_to_payload(self.config.seed),
                "batch": self.config.batch,
                "backend": self.config.backend,
                "confidence": self.config.confidence,
                "rel_err": self.config.rel_err,
                "traffic": self.config.traffic,
                "retry": retry.label if retry is not None else None,
                "buffer_depth": self.config.buffer_depth,
            },
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "SweepCell":
        spec = payload["spec"]
        config = payload["config"]
        return cls(
            spec=NetworkSpec(
                kind=spec["kind"],
                shape=tuple(spec["shape"]),
                priority=spec.get("priority", "label"),
                wire_policy=spec.get("wire_policy", "first_free"),
                faults=tuple(WireFault(*f) for f in spec.get("faults", ())),
            ),
            config=RunConfig(
                cycles=config.get("cycles"),
                seed=seed_from_payload(config.get("seed")),
                batch=config.get("batch"),
                backend=config.get("backend", "auto"),
                confidence=config.get("confidence"),
                rel_err=config.get("rel_err"),
                traffic=config.get("traffic"),
                retry=config.get("retry"),
                buffer_depth=config.get("buffer_depth"),
            ),
        )

    def key(self) -> str:
        """The content key: SHA-256 over the canonical payload.

        Covers the spec (including the canonical fault tuple — the same
        canonicalization the plan cache keys on) and every
        result-determining config field; two cells agree on their key iff
        they would produce identical measurements.  ``buffer_depth``
        enters the key only when set, so unbuffered cells keep the keys
        they have always had.
        """
        payload = self.payload()
        payload["config"] = {
            name: payload["config"][name] for name in _KEYED_CONFIG_FIELDS
        }
        if payload["config"]["buffer_depth"] is None:
            del payload["config"]["buffer_depth"]
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def measurement_to_payload(measurement) -> dict:
    """A JSON-safe dict of a measurement (closed-loop fields included).

    Floats serialize via ``repr`` (Python's ``json``), which round-trips
    every finite double exactly — the payload is bit-identical to the
    in-process numbers.  Buffered measurements
    (:class:`~repro.sim.buffered.BufferedMeasurement`, produced by cells
    with a ``buffer_depth``) serialize under a ``"buffered"`` envelope.
    """
    from repro.sim.buffered import BufferedMeasurement

    if isinstance(measurement, BufferedMeasurement):
        return {
            "buffered": {
                "graph_label": measurement.graph_label,
                "traffic": measurement.traffic,
                "depth": measurement.depth,
                "priority": measurement.priority,
                "cycles": measurement.cycles,
                "warmup": measurement.warmup,
                "seed": seed_to_payload(measurement.seed),
                "offered": measurement.offered,
                "injected": measurement.injected,
                "delivered": measurement.delivered,
                "throughput": measurement.throughput,
                "latency": measurement.latency.to_payload(),
                "mean_occupancy": measurement.mean_occupancy,
                "total_occupancy": measurement.total_occupancy,
                "num_queues": measurement.num_queues,
                "in_flight": measurement.in_flight,
                "n_inputs": measurement.n_inputs,
                "n_outputs": measurement.n_outputs,
                "faults": [
                    [f.stage, f.switch, f.local_wire]
                    for f in measurement.faults
                ],
                "dropped": measurement.dropped,
            }
        }
    acceptance = measurement.acceptance
    payload = {
        "cycles": measurement.cycles,
        "offered": measurement.offered,
        "delivered": measurement.delivered,
        "acceptance": [acceptance.point, acceptance.low, acceptance.high],
        "blocked_by_stage": {
            str(stage): count
            for stage, count in measurement.blocked_by_stage.items()
        },
        "budget": measurement.budget,
        "target_rel_err": measurement.target_rel_err,
        "converged": measurement.converged,
    }
    if getattr(measurement, "policy", None) is not None:
        payload["closed_loop"] = {
            "attempts": [
                measurement.attempts.point,
                measurement.attempts.low,
                measurement.attempts.high,
            ],
            "latency": [
                measurement.latency.point,
                measurement.latency.low,
                measurement.latency.high,
            ],
            "delivered_messages": measurement.delivered_messages,
            "abandoned": measurement.abandoned,
            "policy": measurement.policy.label,
        }
        histogram = getattr(measurement, "latency_histogram", None)
        if histogram is not None:
            payload["closed_loop"]["latency_histogram"] = histogram.to_payload()
    return payload


def measurement_from_payload(payload: dict):
    """Invert :func:`measurement_to_payload`."""
    from repro.sim.stats import Interval

    buffered = payload.get("buffered")
    if buffered is not None:
        from repro.sim.buffered import BufferedMeasurement
        from repro.sim.stats import LatencyStats

        return BufferedMeasurement(
            graph_label=buffered["graph_label"],
            traffic=buffered["traffic"],
            depth=buffered["depth"],
            priority=buffered["priority"],
            cycles=buffered["cycles"],
            warmup=buffered["warmup"],
            seed=seed_from_payload(buffered["seed"]),
            offered=buffered["offered"],
            injected=buffered["injected"],
            delivered=buffered["delivered"],
            throughput=buffered["throughput"],
            latency=LatencyStats.from_payload(buffered["latency"]),
            mean_occupancy=buffered["mean_occupancy"],
            total_occupancy=buffered["total_occupancy"],
            num_queues=buffered["num_queues"],
            in_flight=buffered["in_flight"],
            n_inputs=buffered["n_inputs"],
            n_outputs=buffered["n_outputs"],
            faults=tuple(WireFault(*f) for f in buffered.get("faults", ())),
            dropped=buffered.get("dropped", 0),
        )

    common = {
        "cycles": payload["cycles"],
        "offered": payload["offered"],
        "delivered": payload["delivered"],
        "acceptance": Interval(*payload["acceptance"]),
        "blocked_by_stage": {
            int(stage): count
            for stage, count in payload["blocked_by_stage"].items()
        },
        "budget": payload["budget"],
        "target_rel_err": payload["target_rel_err"],
        "converged": payload["converged"],
    }
    closed = payload.get("closed_loop")
    if closed is not None:
        from repro.sim.closedloop import ClosedLoopMeasurement, RetryPolicy
        from repro.sim.stats import Interval as _I
        from repro.sim.stats import LatencyStats

        histogram = closed.get("latency_histogram")
        return ClosedLoopMeasurement(
            **common,
            attempts=_I(*closed["attempts"]),
            latency=_I(*closed["latency"]),
            delivered_messages=closed["delivered_messages"],
            abandoned=closed["abandoned"],
            policy=RetryPolicy.parse(closed["policy"]),
            latency_histogram=(
                LatencyStats.from_payload(histogram) if histogram is not None else None
            ),
        )
    from repro.sim.montecarlo import AcceptanceMeasurement

    return AcceptanceMeasurement(**common)


@dataclass(frozen=True)
class CellResult:
    """A measured cell plus its service metadata.

    ``cached`` distinguishes a dedupe hit from fresh compute; ``worker``
    is the pid that ran the measurement (``None`` for cache hits).  A
    cell the service could not complete (when the caller opted into
    ``tolerate_failures``) carries ``measurement=None`` plus the
    structured ``error`` message, with ``quarantined`` set when the
    server gave up on the cell as poison.
    """

    key: str
    measurement: Optional["AcceptanceMeasurement"]
    cached: bool = False
    worker: Optional[int] = None
    error: Optional[str] = None
    quarantined: bool = False


def measure_cell(cell: SweepCell, *, progress=None):
    """Execute one cell — the single definition of cell semantics.

    Builds the router through the backend registry (consulting the
    per-process plan cache) and hands off to
    :func:`~repro.sim.montecarlo.measure_acceptance` with the cell's
    config; the service workers, :meth:`ParallelSweep.map_cells`, and the
    bit-identity tests all call exactly this function.  ``progress`` is
    forwarded to the harness (chunk-boundary streaming callback); it
    observes only, so results are identical with or without it.

    A cell whose config sets ``buffer_depth`` runs the buffered
    packet-switched discipline instead
    (:func:`~repro.sim.buffered.measure_buffered`, warmup fixed at
    ``cycles // 4``): ``backend`` ``auto``/``batched`` select the
    compiled kernels, ``reference``/``vectorized`` the per-packet
    interpreter — bit-identical either way, so the content key's
    ``backend`` field stays honest.
    """
    from repro.api.registry import build_router
    from repro.sim.montecarlo import measure_acceptance

    config = cell.config
    if config.buffer_depth is not None:
        from repro.sim.buffered import measure_buffered

        engines = {
            "auto": "compiled",
            "batched": "compiled",
            "native": "compiled",
            "reference": "reference",
            "vectorized": "reference",
        }
        engine = engines.get(config.backend)
        if engine is None:
            raise ConfigurationError(
                f"buffered cells support backends {sorted(engines)}, "
                f"got {config.backend!r}"
            )
        cycles = config.cycles if config.cycles is not None else 400
        return measure_buffered(
            cell.spec.stage_graph(),
            traffic=config.traffic if config.traffic is not None else "uniform",
            depth=config.buffer_depth,
            priority=cell.spec.priority,
            cycles=cycles,
            warmup=cycles // 4,
            seed=config.seed if config.seed is not None else 0,
            engine=engine,
            faults=cell.spec.faults,
        )
    router = build_router(cell.spec, cell.config.backend)
    return measure_acceptance(router, config=cell.config, progress=progress)
