"""Spec-level measurement: one call from :class:`NetworkSpec` to numbers.

The thin glue between the facade and the Monte-Carlo harness: build the
router the config's backend selects, resolve the workload (explicit
generator or spec string, ``config.traffic``, or the default uniform
demands), and hand off to
:func:`repro.sim.montecarlo.measure_acceptance`.
"""

from __future__ import annotations

from typing import Optional

from repro.api.registry import build_router
from repro.api.spec import NetworkSpec, RunConfig
from repro.core.exceptions import ConfigurationError
from repro.sim.montecarlo import AcceptanceMeasurement, measure_acceptance
from repro.workloads import TrafficLike, UniformTraffic

__all__ = ["measure"]


def measure(
    spec: NetworkSpec,
    config: Optional[RunConfig] = None,
    *,
    traffic: Optional[TrafficLike] = None,
    rate: float = 1.0,
) -> AcceptanceMeasurement:
    """Monte-Carlo acceptance of the specified network under ``traffic``.

    ``traffic`` is anything :func:`repro.workloads.make_traffic` accepts —
    a workload spec string, a parsed spec, or a built generator.  When
    omitted, a set ``config.traffic`` is used; failing that, uniform
    independent demands at request rate ``rate`` (the paper's Section 3.2
    workload) sized to the network.  ``rate`` shapes only that default —
    combining it with an explicit workload is rejected rather than
    silently ignored (encode rates inside the spec: ``"uniform:0.5"``).

    Repeated calls for equal specs are cheap: ``build_router`` constructs
    engines that share compiled :class:`~repro.sim.plan.RoutingPlan`
    tables through the keyed plan cache, and ``config.rel_err`` turns the
    cycle budget into a ceiling with adaptive early stopping (see
    ``docs/PERFORMANCE.md``).

    >>> m = measure(NetworkSpec.edn(16, 4, 4, 2), RunConfig(cycles=20, seed=0))
    >>> 0.0 < m.point <= 1.0
    True
    >>> hot = measure(
    ...     NetworkSpec.edn(16, 4, 4, 2),
    ...     RunConfig(cycles=20, seed=0, traffic="hotspot:0.5"),
    ... )
    >>> hot.point < m.point  # the hot output saturates its paths
    True
    """
    config = config if config is not None else RunConfig()
    router = build_router(spec, config.backend)
    if traffic is None and config.traffic is None:
        traffic = UniformTraffic(router.n_inputs, router.n_outputs, rate)
    elif rate != 1.0:
        raise ConfigurationError(
            "rate applies to the default uniform workload only; encode the "
            "rate inside the traffic spec instead (e.g. 'uniform:0.5', "
            "'hotspot:0.1,rate=0.5')"
        )
    return measure_acceptance(router, traffic, config=config)
