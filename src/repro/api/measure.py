"""Spec-level measurement: one call from :class:`NetworkSpec` to numbers.

The thin glue between the facade and the Monte-Carlo harness: build the
router the config's backend selects, synthesize uniform traffic unless the
caller provides a generator, and hand off to
:func:`repro.sim.montecarlo.measure_acceptance`.
"""

from __future__ import annotations

from typing import Optional

from repro.api.registry import build_router
from repro.api.spec import NetworkSpec, RunConfig
from repro.sim.montecarlo import AcceptanceMeasurement, measure_acceptance
from repro.sim.traffic import TrafficGenerator, UniformTraffic

__all__ = ["measure"]


def measure(
    spec: NetworkSpec,
    config: Optional[RunConfig] = None,
    *,
    traffic: Optional[TrafficGenerator] = None,
    rate: float = 1.0,
) -> AcceptanceMeasurement:
    """Monte-Carlo acceptance of the specified network under ``traffic``.

    ``traffic`` defaults to uniform independent demands at request rate
    ``rate`` (the paper's Section 3.2 workload) sized to the network.

    >>> m = measure(NetworkSpec.edn(16, 4, 4, 2), RunConfig(cycles=20, seed=0))
    >>> 0.0 < m.point <= 1.0
    True
    """
    config = config if config is not None else RunConfig()
    router = build_router(spec, config.backend)
    if traffic is None:
        traffic = UniformTraffic(router.n_inputs, router.n_outputs, rate)
    return measure_acceptance(router, traffic, config=config)
