"""String-keyed backend registry and router construction.

A *backend* is a named way of turning a :class:`NetworkSpec` into a
:class:`Router`.  Backends declare which topology kinds they build and
which spec features they support; :func:`build_router` resolves a name (or
``"auto"``) against a spec and instantiates the router.

Registered backends:

=============  =======================================  =================
name           engine                                   kinds
=============  =======================================  =================
``native``     :class:`StagePlan` lowered to            edn, delta,
               JIT-compiled per-stage loops             omega, dilated
               (:class:`NativeStageRouter`; numba or
               a runtime-compiled C kernel); needs
               ``pip install repro[native]`` or a C
               toolchain, and drops out of the
               registry when neither is present
``batched``    native ``(batch, N)`` array engines —    edn, delta,
               :class:`BatchedEDN` plus the compiled    omega, dilated,
               stage-graph router every delta-family    crossbar
               baseline compiles to
               (:class:`CompiledStageRouter`), and
               the batched crossbar
``vectorized`` per-cycle array engines behind the       edn, delta,
               automatic batch loop — the independent   omega, dilated,
               cross-check path (the stage-graph        crossbar
               kinds use the sort-based
               :class:`StageGraphReference`
               interpreter)
``reference``  the per-message reference engine         edn
               (non-default wire policies; faulted
               EDNs via :class:`FaultyEDNetwork`)
``matching``   Clos matching decomposition              clos
``looping``    Beneš looping algorithm                  benes
``native:gpu`` Array-API counts-only kernel (CuPy       edn, delta,
               when importable, NumPy otherwise);       omega, dilated
               explicit opt-in, never picked by
               ``auto``
=============  =======================================  =================

``auto`` picks the first supporting backend in :data:`AUTO_PREFERENCE`
order — the JIT backend when its dependencies are present, then batched
engines, then the per-cycle loop — mirroring how the Monte-Carlo harness
has always dispatched on ``route_batch`` availability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.exceptions import ConfigurationError
from repro.api.router import (
    PerCycleRouter,
    RearrangeableRouter,
    ReferenceEDNRouter,
    Router,
)
from repro.api.spec import NetworkSpec

__all__ = [
    "Backend",
    "BACKENDS",
    "AUTO_PREFERENCE",
    "register_backend",
    "available_backends",
    "resolve_backend",
    "build_router",
]


@dataclass(frozen=True)
class Backend:
    """One registered way of building routers.

    ``builder`` instantiates a router for a supported spec; ``accepts``
    refines kind membership with feature checks (faults, disciplines).
    ``batched`` records whether routing is natively batched (drives
    ``auto`` preference and lets tooling report engine class).
    ``availability`` reports a host-environment problem (missing
    optional dependency, no toolchain) as a message, or ``None`` when
    the backend can run here; ``auto_ok`` additionally gates whether
    ``auto`` may pick the backend (an available backend can still opt
    out of automatic selection, e.g. the GPU path).
    """

    name: str
    description: str
    kinds: frozenset[str]
    batched: bool
    builder: Callable[[NetworkSpec], Router]
    accepts: Callable[[NetworkSpec], bool]
    availability: Callable[[], str | None]
    auto_ok: Callable[[], bool]

    def supports(self, spec: NetworkSpec) -> bool:
        return spec.kind in self.kinds and self.accepts(spec)

    def runnable(self) -> bool:
        return self.availability() is None


#: name -> Backend, in registration order.
BACKENDS: dict[str, Backend] = {}

#: ``auto`` tries these in order and takes the first that supports the spec.
AUTO_PREFERENCE = (
    "native", "batched", "matching", "looping", "vectorized", "reference"
)


def register_backend(
    name: str,
    *,
    description: str,
    kinds: frozenset[str] | set[str],
    batched: bool,
    accepts: Callable[[NetworkSpec], bool] | None = None,
    availability: Callable[[], str | None] | None = None,
    auto_ok: Callable[[], bool] | None = None,
):
    """Register ``fn`` as the builder of backend ``name`` (decorator)."""

    def decorate(fn: Callable[[NetworkSpec], Router]):
        if name in BACKENDS:
            raise ConfigurationError(f"backend {name!r} already registered")
        BACKENDS[name] = Backend(
            name=name,
            description=description,
            kinds=frozenset(kinds),
            batched=batched,
            builder=fn,
            accepts=accepts if accepts is not None else (lambda spec: True),
            availability=availability if availability is not None else (lambda: None),
            auto_ok=auto_ok if auto_ok is not None else (lambda: True),
        )
        return fn

    return decorate


def available_backends(spec: NetworkSpec) -> list[str]:
    """Backends able to build ``spec`` *on this host*, preference first.

    Environment-gated backends (``native`` needs numba or a C toolchain)
    drop out of the list when their dependency is missing, so the
    doctests below pin specs the gated backends never serve.

    >>> available_backends(NetworkSpec.crossbar(8))
    ['batched', 'vectorized']
    >>> available_backends(NetworkSpec.benes(16))
    ['looping']
    """
    ordered = list(AUTO_PREFERENCE) + [n for n in BACKENDS if n not in AUTO_PREFERENCE]
    return [
        name
        for name in ordered
        if name in BACKENDS
        and BACKENDS[name].supports(spec)
        and BACKENDS[name].runnable()
    ]


def resolve_backend(spec: NetworkSpec, backend: str = "auto") -> Backend:
    """The :class:`Backend` that ``backend`` selects for ``spec``.

    ``auto`` walks :data:`AUTO_PREFERENCE`, skipping backends that opted
    out of automatic selection; an explicit name must exist, be runnable
    on this host, and support the spec, with the error naming the
    alternatives.

    >>> resolve_backend(NetworkSpec.crossbar(8)).name
    'batched'
    >>> resolve_backend(NetworkSpec.clos(8, 8)).name
    'matching'
    """
    if backend == "auto":
        for name in available_backends(spec):
            if BACKENDS[name].auto_ok():
                return BACKENDS[name]
        raise ConfigurationError(
            f"no registered backend supports {spec} with "
            f"priority={spec.priority!r}, wire_policy={spec.wire_policy!r}, "
            f"{len(spec.faults)} fault(s); kind {spec.kind!r} is served by "
            f"{sorted(n for n, b in BACKENDS.items() if spec.kind in b.kinds)}"
        )
    try:
        entry = BACKENDS[backend]
    except KeyError:
        raise ConfigurationError(
            f"unknown backend {backend!r}; registered: {sorted(BACKENDS)}"
        ) from None
    # Environment availability first: "you asked for native but numba is
    # missing" beats "native does not support this spec".
    reason = entry.availability()
    if reason is not None:
        raise ConfigurationError(f"backend {backend!r} is unavailable: {reason}")
    if not entry.supports(spec):
        if spec.faults:
            from dataclasses import replace

            if entry.supports(replace(spec, faults=())):
                # The backend handles the topology but not its faults:
                # say so, and name the fault-capable alternatives.
                capable = available_backends(spec)
                raise ConfigurationError(
                    f"backend {backend!r} does not support fault injection "
                    f"on {spec} ({len(spec.faults)} wire fault(s)); "
                    f"fault-capable backends for this spec: {capable}"
                )
        raise ConfigurationError(
            f"backend {backend!r} does not support {spec} "
            f"(available: {available_backends(spec)})"
        )
    return entry


def build_router(spec: NetworkSpec, backend: str = "auto") -> Router:
    """Construct a router for ``spec`` — the facade's main entry point.

    >>> import numpy as np
    >>> router = build_router(NetworkSpec.edn(16, 4, 4, 2))
    >>> router.route_batch(np.tile(np.arange(64), (3, 1))).output.shape
    (3, 64)
    """
    return resolve_backend(spec, backend).builder(spec)


# ----------------------------------------------------------------------
# Built-in backends
# ----------------------------------------------------------------------


def _no_faults(spec: NetworkSpec) -> bool:
    return not spec.faults


def _array_engine_ok(spec: NetworkSpec) -> bool:
    # Array engines fix first-free wire assignment (acceptance-equivalent).
    # Faults are fine: spec validation restricts them to the stage-graph
    # kinds, where they lower into the compiled plan's dead masks.
    return spec.wire_policy == "first_free"


def _label_only(spec: NetworkSpec) -> bool:
    # Global control has no contention randomness to randomize.
    return spec.priority == "label"


@register_backend(
    "batched",
    description="native (batch, N) array engines — the Monte-Carlo fast path",
    kinds={"edn", "delta", "omega", "dilated", "crossbar"},
    batched=True,
    accepts=_array_engine_ok,
)
def _build_batched(spec: NetworkSpec) -> Router:
    from repro.baselines.crossbar_network import CrossbarNetwork
    from repro.sim.batched import BatchedEDN, CompiledStageRouter

    if spec.kind == "edn" and not spec.faults:
        return BatchedEDN(spec.edn_params, priority=spec.priority)
    if spec.kind == "crossbar":
        return CrossbarNetwork(*spec.shape, priority=spec.priority)
    # Every delta-family baseline compiles to the same plan-cached
    # stage-graph kernels; the spec carries the topology as data.  A
    # faulted EDN also routes here: the graph kernels are where the
    # fault masks are lowered, and the EDN-specialized engine stays
    # fault-free.
    return CompiledStageRouter(
        spec.stage_graph(), priority=spec.priority, faults=spec.faults
    )


@register_backend(
    "vectorized",
    description="per-cycle array engines behind the automatic batch loop",
    kinds={"edn", "delta", "omega", "dilated", "crossbar"},
    batched=False,
    accepts=_array_engine_ok,
)
def _build_vectorized(spec: NetworkSpec) -> Router:
    from repro.baselines.crossbar_network import CrossbarNetwork
    from repro.sim.stagegraph import StageGraphReference
    from repro.sim.vectorized import VectorizedEDN

    if spec.kind == "edn" and not spec.faults:
        return PerCycleRouter(VectorizedEDN(spec.edn_params, priority=spec.priority))
    if spec.kind == "crossbar":
        return PerCycleRouter(CrossbarNetwork(*spec.shape, priority=spec.priority))
    # The sort-based per-cycle interpreter behind the generic batch loop:
    # deliberately independent of the compiled kernels, so cross-backend
    # equivalence tests exercise two implementations of the semantics —
    # including the fault masks, which this path builds from per-bucket
    # live lists rather than the plan's argsort lowering.
    return PerCycleRouter(
        StageGraphReference(
            spec.stage_graph(), priority=spec.priority, faults=spec.faults
        )
    )


def _reference_ok(spec: NetworkSpec) -> bool:
    # FaultyEDNetwork implements the paper's default disciplines only.
    if spec.faults:
        return spec.priority == "label" and spec.wire_policy == "first_free"
    return True


@register_backend(
    "reference",
    description="per-message reference engine (fault injection, wire policies)",
    kinds={"edn"},
    batched=False,
    accepts=_reference_ok,
)
def _build_reference(spec: NetworkSpec) -> Router:
    from repro.core.faults import FaultSet, FaultyEDNetwork
    from repro.core.network import EDNetwork

    if spec.faults:
        return ReferenceEDNRouter(
            FaultyEDNetwork(spec.edn_params, FaultSet(spec.faults))
        )
    return ReferenceEDNRouter(
        EDNetwork(
            spec.edn_params, priority=spec.priority, wire_policy=spec.wire_policy
        )
    )


@register_backend(
    "matching",
    description="Clos matching-decomposition global routing",
    kinds={"clos"},
    batched=False,
    accepts=_label_only,
)
def _build_clos(spec: NetworkSpec) -> Router:
    from repro.baselines.clos import ClosNetwork

    n, r = spec.shape[0], spec.shape[1]
    m = spec.shape[2] if len(spec.shape) == 3 else None
    return RearrangeableRouter(ClosNetwork(n, r, m))


@register_backend(
    "looping",
    description="Beneš looping-algorithm global routing",
    kinds={"benes"},
    batched=False,
    accepts=_label_only,
)
def _build_benes(spec: NetworkSpec) -> Router:
    from repro.baselines.benes import BenesNetwork

    return RearrangeableRouter(BenesNetwork(spec.shape[0]))


def _native_availability() -> str | None:
    # Late import + module-attribute call so tests can monkeypatch the
    # probe, and so importing the registry never triggers a JIT probe.
    from repro.sim import native

    return native.unavailable_reason()


def _native_auto_ok() -> bool:
    from repro.sim import native

    return bool(native.available_tiers())


@register_backend(
    "native",
    description="StagePlan lowered to JIT-compiled per-stage loops",
    kinds={"edn", "delta", "omega", "dilated"},
    batched=True,
    accepts=_array_engine_ok,
    availability=_native_availability,
    auto_ok=_native_auto_ok,
)
def _build_native(spec: NetworkSpec) -> Router:
    from repro.sim.native import NativeStageRouter

    # Every stage-graph kind (a faulted EDN included) compiles to the
    # same plan; the native router swaps in the fused counts kernel and
    # inherits the full batched capability surface for everything else.
    return NativeStageRouter(
        spec.stage_graph(), priority=spec.priority, faults=spec.faults
    )


def _native_gpu_ok(spec: NetworkSpec) -> bool:
    # The Array-API counts path lowers neither fault masks nor random
    # priority yet; keep the capability gate explicit so the resolver's
    # error names the fault-capable alternatives.
    return _array_engine_ok(spec) and spec.priority == "label" and not spec.faults


@register_backend(
    "native:gpu",
    description="Array-API counts kernel (CuPy when present, NumPy otherwise)",
    kinds={"edn", "delta", "omega", "dilated"},
    batched=True,
    accepts=_native_gpu_ok,
    auto_ok=lambda: False,
)
def _build_native_gpu(spec: NetworkSpec) -> Router:
    from repro.sim.native import NativeStageRouter

    return NativeStageRouter(
        spec.stage_graph(), priority=spec.priority, device="gpu"
    )
