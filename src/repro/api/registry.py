"""String-keyed backend registry and router construction.

A *backend* is a named way of turning a :class:`NetworkSpec` into a
:class:`Router`.  Backends declare which topology kinds they build and
which spec features they support; :func:`build_router` resolves a name (or
``"auto"``) against a spec and instantiates the router.

Registered backends:

=============  =======================================  =================
name           engine                                   kinds
=============  =======================================  =================
``batched``    native ``(batch, N)`` array engines —    edn, delta,
               :class:`BatchedEDN` plus the compiled    omega, dilated,
               stage-graph router every delta-family    crossbar
               baseline compiles to
               (:class:`CompiledStageRouter`), and
               the batched crossbar
``vectorized`` per-cycle array engines behind the       edn, delta,
               automatic batch loop — the independent   omega, dilated,
               cross-check path (the stage-graph        crossbar
               kinds use the sort-based
               :class:`StageGraphReference`
               interpreter)
``reference``  the per-message reference engine         edn
               (non-default wire policies; faulted
               EDNs via :class:`FaultyEDNetwork`)
``matching``   Clos matching decomposition              clos
``looping``    Beneš looping algorithm                  benes
=============  =======================================  =================

``auto`` picks the first supporting backend in :data:`AUTO_PREFERENCE`
order — batched engines first, the per-cycle loop as fallback — mirroring
how the Monte-Carlo harness has always dispatched on ``route_batch``
availability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.exceptions import ConfigurationError
from repro.api.router import (
    PerCycleRouter,
    RearrangeableRouter,
    ReferenceEDNRouter,
    Router,
)
from repro.api.spec import NetworkSpec

__all__ = [
    "Backend",
    "BACKENDS",
    "AUTO_PREFERENCE",
    "register_backend",
    "available_backends",
    "resolve_backend",
    "build_router",
]


@dataclass(frozen=True)
class Backend:
    """One registered way of building routers.

    ``builder`` instantiates a router for a supported spec; ``accepts``
    refines kind membership with feature checks (faults, disciplines).
    ``batched`` records whether routing is natively batched (drives
    ``auto`` preference and lets tooling report engine class).
    """

    name: str
    description: str
    kinds: frozenset[str]
    batched: bool
    builder: Callable[[NetworkSpec], Router]
    accepts: Callable[[NetworkSpec], bool]

    def supports(self, spec: NetworkSpec) -> bool:
        return spec.kind in self.kinds and self.accepts(spec)


#: name -> Backend, in registration order.
BACKENDS: dict[str, Backend] = {}

#: ``auto`` tries these in order and takes the first that supports the spec.
AUTO_PREFERENCE = ("batched", "matching", "looping", "vectorized", "reference")


def register_backend(
    name: str,
    *,
    description: str,
    kinds: frozenset[str] | set[str],
    batched: bool,
    accepts: Callable[[NetworkSpec], bool] | None = None,
):
    """Register ``fn`` as the builder of backend ``name`` (decorator)."""

    def decorate(fn: Callable[[NetworkSpec], Router]):
        if name in BACKENDS:
            raise ConfigurationError(f"backend {name!r} already registered")
        BACKENDS[name] = Backend(
            name=name,
            description=description,
            kinds=frozenset(kinds),
            batched=batched,
            builder=fn,
            accepts=accepts if accepts is not None else (lambda spec: True),
        )
        return fn

    return decorate


def available_backends(spec: NetworkSpec) -> list[str]:
    """Backend names able to build ``spec``, ``auto``-preference first.

    >>> available_backends(NetworkSpec.edn(16, 4, 4, 2))
    ['batched', 'vectorized', 'reference']
    >>> available_backends(NetworkSpec.benes(16))
    ['looping']
    """
    ordered = list(AUTO_PREFERENCE) + [n for n in BACKENDS if n not in AUTO_PREFERENCE]
    return [name for name in ordered if name in BACKENDS and BACKENDS[name].supports(spec)]


def resolve_backend(spec: NetworkSpec, backend: str = "auto") -> Backend:
    """The :class:`Backend` that ``backend`` selects for ``spec``.

    ``auto`` walks :data:`AUTO_PREFERENCE`; an explicit name must both
    exist and support the spec, with the error naming the alternatives.

    >>> resolve_backend(NetworkSpec.edn(16, 4, 4, 2)).name
    'batched'
    >>> resolve_backend(NetworkSpec.clos(8, 8)).name
    'matching'
    """
    if backend == "auto":
        for name in available_backends(spec):
            return BACKENDS[name]
        raise ConfigurationError(
            f"no registered backend supports {spec} with "
            f"priority={spec.priority!r}, wire_policy={spec.wire_policy!r}, "
            f"{len(spec.faults)} fault(s); kind {spec.kind!r} is served by "
            f"{sorted(n for n, b in BACKENDS.items() if spec.kind in b.kinds)}"
        )
    try:
        entry = BACKENDS[backend]
    except KeyError:
        raise ConfigurationError(
            f"unknown backend {backend!r}; registered: {sorted(BACKENDS)}"
        ) from None
    if not entry.supports(spec):
        if spec.faults:
            from dataclasses import replace

            if entry.supports(replace(spec, faults=())):
                # The backend handles the topology but not its faults:
                # say so, and name the fault-capable alternatives.
                capable = available_backends(spec)
                raise ConfigurationError(
                    f"backend {backend!r} does not support fault injection "
                    f"on {spec} ({len(spec.faults)} wire fault(s)); "
                    f"fault-capable backends for this spec: {capable}"
                )
        raise ConfigurationError(
            f"backend {backend!r} does not support {spec} "
            f"(available: {available_backends(spec)})"
        )
    return entry


def build_router(spec: NetworkSpec, backend: str = "auto") -> Router:
    """Construct a router for ``spec`` — the facade's main entry point.

    >>> import numpy as np
    >>> router = build_router(NetworkSpec.edn(16, 4, 4, 2))
    >>> router.route_batch(np.tile(np.arange(64), (3, 1))).output.shape
    (3, 64)
    """
    return resolve_backend(spec, backend).builder(spec)


# ----------------------------------------------------------------------
# Built-in backends
# ----------------------------------------------------------------------


def _no_faults(spec: NetworkSpec) -> bool:
    return not spec.faults


def _array_engine_ok(spec: NetworkSpec) -> bool:
    # Array engines fix first-free wire assignment (acceptance-equivalent).
    # Faults are fine: spec validation restricts them to the stage-graph
    # kinds, where they lower into the compiled plan's dead masks.
    return spec.wire_policy == "first_free"


def _label_only(spec: NetworkSpec) -> bool:
    # Global control has no contention randomness to randomize.
    return spec.priority == "label"


@register_backend(
    "batched",
    description="native (batch, N) array engines — the Monte-Carlo fast path",
    kinds={"edn", "delta", "omega", "dilated", "crossbar"},
    batched=True,
    accepts=_array_engine_ok,
)
def _build_batched(spec: NetworkSpec) -> Router:
    from repro.baselines.crossbar_network import CrossbarNetwork
    from repro.sim.batched import BatchedEDN, CompiledStageRouter

    if spec.kind == "edn" and not spec.faults:
        return BatchedEDN(spec.edn_params, priority=spec.priority)
    if spec.kind == "crossbar":
        return CrossbarNetwork(*spec.shape, priority=spec.priority)
    # Every delta-family baseline compiles to the same plan-cached
    # stage-graph kernels; the spec carries the topology as data.  A
    # faulted EDN also routes here: the graph kernels are where the
    # fault masks are lowered, and the EDN-specialized engine stays
    # fault-free.
    return CompiledStageRouter(
        spec.stage_graph(), priority=spec.priority, faults=spec.faults
    )


@register_backend(
    "vectorized",
    description="per-cycle array engines behind the automatic batch loop",
    kinds={"edn", "delta", "omega", "dilated", "crossbar"},
    batched=False,
    accepts=_array_engine_ok,
)
def _build_vectorized(spec: NetworkSpec) -> Router:
    from repro.baselines.crossbar_network import CrossbarNetwork
    from repro.sim.stagegraph import StageGraphReference
    from repro.sim.vectorized import VectorizedEDN

    if spec.kind == "edn" and not spec.faults:
        return PerCycleRouter(VectorizedEDN(spec.edn_params, priority=spec.priority))
    if spec.kind == "crossbar":
        return PerCycleRouter(CrossbarNetwork(*spec.shape, priority=spec.priority))
    # The sort-based per-cycle interpreter behind the generic batch loop:
    # deliberately independent of the compiled kernels, so cross-backend
    # equivalence tests exercise two implementations of the semantics —
    # including the fault masks, which this path builds from per-bucket
    # live lists rather than the plan's argsort lowering.
    return PerCycleRouter(
        StageGraphReference(
            spec.stage_graph(), priority=spec.priority, faults=spec.faults
        )
    )


def _reference_ok(spec: NetworkSpec) -> bool:
    # FaultyEDNetwork implements the paper's default disciplines only.
    if spec.faults:
        return spec.priority == "label" and spec.wire_policy == "first_free"
    return True


@register_backend(
    "reference",
    description="per-message reference engine (fault injection, wire policies)",
    kinds={"edn"},
    batched=False,
    accepts=_reference_ok,
)
def _build_reference(spec: NetworkSpec) -> Router:
    from repro.core.faults import FaultSet, FaultyEDNetwork
    from repro.core.network import EDNetwork

    if spec.faults:
        return ReferenceEDNRouter(
            FaultyEDNetwork(spec.edn_params, FaultSet(spec.faults))
        )
    return ReferenceEDNRouter(
        EDNetwork(
            spec.edn_params, priority=spec.priority, wire_policy=spec.wire_policy
        )
    )


@register_backend(
    "matching",
    description="Clos matching-decomposition global routing",
    kinds={"clos"},
    batched=False,
    accepts=_label_only,
)
def _build_clos(spec: NetworkSpec) -> Router:
    from repro.baselines.clos import ClosNetwork

    n, r = spec.shape[0], spec.shape[1]
    m = spec.shape[2] if len(spec.shape) == 3 else None
    return RearrangeableRouter(ClosNetwork(n, r, m))


@register_backend(
    "looping",
    description="Beneš looping-algorithm global routing",
    kinds={"benes"},
    batched=False,
    accepts=_label_only,
)
def _build_benes(spec: NetworkSpec) -> Router:
    from repro.baselines.benes import BenesNetwork

    return RearrangeableRouter(BenesNetwork(spec.shape[0]))
