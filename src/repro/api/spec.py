"""Typed specifications: what network to build, how to run it.

Two frozen dataclasses carry everything the facade needs:

* :class:`NetworkSpec` — *what*: a topology kind plus its shape parameters,
  the contention/wire disciplines, and an optional fault set.  One spec
  names one concrete network, independent of which engine (backend)
  eventually routes it.
* :class:`RunConfig` — *how*: Monte-Carlo budgets (cycles, seed,
  confidence), execution knobs (process fan-out ``jobs``, cycles per
  batched chunk ``batch``), and the backend selector.  Unset fields mean
  "use the consumer's default", so one partially-filled config can thread
  through layers of APIs without clobbering their local defaults.

Both are hashable and picklable, so they cross
:class:`~repro.experiments.parallel.ParallelSweep` process boundaries and
can key caches.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Optional

from repro.core.config import EDNParams
from repro.core.exceptions import ConfigurationError
from repro.core.faults import WireFault
from repro.sim.rng import SeedLike

__all__ = ["NetworkSpec", "RunConfig", "TOPOLOGY_KINDS"]

#: kind -> (accepted shape arities, human-readable shape signature).
TOPOLOGY_KINDS: dict[str, tuple[tuple[int, ...], str]] = {
    "edn": ((4,), "a,b,c,l"),
    "delta": ((2, 3), "N,b | a,b,l"),
    "omega": ((1,), "n"),
    "dilated": ((3, 4), "N,b,d | a,b,l,d"),
    "crossbar": ((1, 2), "n[,m]"),
    "clos": ((2, 3), "n,r[,m]"),
    "benes": ((1,), "n"),
}


def _square_depth(n: int, b: int, kind: str) -> int:
    """The ``l`` with ``b^l == n`` for the square ``N,b`` shape forms."""
    if b < 2:
        raise ConfigurationError(f"{kind} switch radix must be >= 2, got b={b}")
    l = 0
    size = 1
    while size < n:
        size *= b
        l += 1
    if size != n or l < 1:
        raise ConfigurationError(
            f"{kind} size {n} is not a power of the switch radix {b}"
        )
    return l


@dataclass(frozen=True)
class NetworkSpec:
    """A topology kind plus everything needed to instantiate it.

    Attributes
    ----------
    kind:
        One of :data:`TOPOLOGY_KINDS`: ``edn``, ``delta``, ``omega``,
        ``dilated``, ``crossbar``, ``clos``, ``benes``.
    shape:
        The kind's shape parameters in canonical order (see the classmethod
        constructors, or :data:`TOPOLOGY_KINDS` for the signatures).
        ``delta`` and ``dilated`` also accept the square ``N,b[,d]`` form
        (``delta:4096,4`` = the 4096-terminal delta of 4x4 switches,
        ``dilated:4096,4,2`` its 2-dilated sibling).
    priority:
        Contention discipline, ``label`` (default) or ``random``.
        Globally-controlled kinds (``clos``, ``benes``) resolve output
        conflicts in label order and accept only ``label``.
    wire_policy:
        Bucket-wire assignment for the EDN reference engine
        (``first_free``/``random``); array engines fix ``first_free``
        (the policies are acceptance-equivalent).
    faults:
        Dead output wires, available on every stage-graph kind (``edn``,
        ``delta``, ``omega``, ``dilated``).  Lowered into the compiled
        routing plan as per-stage dead masks (see
        :class:`~repro.sim.plan.StagePlan`), so faulted specs route on
        the batched kernels; coordinates are
        ``(stage, switch, local_wire)`` per
        :class:`~repro.core.faults.WireFault`.

    >>> NetworkSpec.edn(16, 4, 4, 2).n_inputs
    64
    >>> NetworkSpec.parse("delta:8,8,2").label
    'delta:8,8,2'
    """

    kind: str
    shape: tuple[int, ...]
    priority: str = "label"
    wire_policy: str = "first_free"
    faults: tuple[WireFault, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in TOPOLOGY_KINDS:
            raise ConfigurationError(
                f"unknown topology kind {self.kind!r}; "
                f"available: {sorted(TOPOLOGY_KINDS)}"
            )
        object.__setattr__(self, "shape", tuple(int(v) for v in self.shape))
        arities, signature = TOPOLOGY_KINDS[self.kind]
        if len(self.shape) not in arities:
            raise ConfigurationError(
                f"{self.kind} expects shape ({signature}), got {self.shape}"
            )
        if self.priority not in ("label", "random"):
            raise ConfigurationError(f"unknown priority discipline {self.priority!r}")
        if self.wire_policy not in ("first_free", "random"):
            raise ConfigurationError(f"unknown wire policy {self.wire_policy!r}")
        object.__setattr__(self, "faults", tuple(sorted(set(self.faults))))
        if self.faults and self.kind not in ("edn", "delta", "omega", "dilated"):
            raise ConfigurationError(
                f"wire faults apply to stage-graph kinds "
                f"(edn, delta, omega, dilated), not {self.kind}"
            )
        self._validate_shape()

    def _validate_shape(self) -> None:
        # Delegate to the builders' own constructors (lazy imports keep this
        # module light), so a spec accepts a shape iff build_router will:
        # there is exactly one copy of each topology's validity rules.
        # Omega is the exception — its constructor materializes a routing
        # engine and an O(n) shuffle table, too heavy for spec validation —
        # so its power-of-two rule is restated here.
        if self.kind in ("edn", "delta"):
            params = self.edn_params  # EDNParams performs full validation
            if self.faults and self.kind == "edn":
                from repro.core.faults import FaultSet

                FaultSet(self.faults).validate(params)
        elif self.kind == "dilated":
            from repro.baselines.dilated import DilatedDelta

            DilatedDelta(*self.dilated_shape)
        elif self.kind == "omega":
            from repro.core.labels import is_power_of_two

            n = self.shape[0]
            if not is_power_of_two(n) or n < 2:
                raise ConfigurationError(
                    f"omega size must be a power of two >= 2, got {n}"
                )
        elif self.kind == "benes":
            from repro.baselines.benes import BenesNetwork

            BenesNetwork(self.shape[0])
        elif self.kind == "crossbar":
            from repro.baselines.crossbar_network import CrossbarNetwork

            CrossbarNetwork(*self.shape)
        elif self.kind == "clos":
            from repro.baselines.clos import ClosNetwork

            n, r = self.shape[0], self.shape[1]
            m = self.shape[2] if len(self.shape) == 3 else None
            ClosNetwork(n, r, m)
        if self.faults and self.kind != "edn":
            # EDN faults were validated in parameter space above; the
            # other stage-graph kinds validate against the graph itself.
            from repro.core.faults import FaultSet

            FaultSet(self.faults).validate_graph(self.stage_graph())

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def edn(cls, a: int, b: int, c: int, l: int, **kwargs) -> "NetworkSpec":
        """An ``EDN(a, b, c, l)`` (paper, Definition 2)."""
        return cls("edn", (a, b, c, l), **kwargs)

    @classmethod
    def delta(cls, a: int, b: int, l: int, **kwargs) -> "NetworkSpec":
        """Patel's ``a^l x b^l`` delta network (the ``c = 1`` EDN)."""
        return cls("delta", (a, b, l), **kwargs)

    @classmethod
    def omega(cls, n: int, **kwargs) -> "NetworkSpec":
        """Lawrie's ``N x N`` omega network (shuffle + 2x2 switches)."""
        return cls("omega", (n,), **kwargs)

    @classmethod
    def dilated(cls, a: int, b: int, l: int, d: int, **kwargs) -> "NetworkSpec":
        """A ``d``-dilated ``a^l x b^l`` delta (paper references [28, 29])."""
        return cls("dilated", (a, b, l, d), **kwargs)

    @classmethod
    def crossbar(cls, n_inputs: int, n_outputs: Optional[int] = None, **kwargs) -> "NetworkSpec":
        """A full crossbar (square unless ``n_outputs`` is given)."""
        shape = (n_inputs,) if n_outputs is None else (n_inputs, n_outputs)
        return cls("crossbar", shape, **kwargs)

    @classmethod
    def clos(cls, n: int, r: int, m: Optional[int] = None, **kwargs) -> "NetworkSpec":
        """A rearrangeable three-stage ``C(n, m, r)`` Clos network."""
        shape = (n, r) if m is None else (n, r, m)
        return cls("clos", shape, **kwargs)

    @classmethod
    def benes(cls, n: int, **kwargs) -> "NetworkSpec":
        """An ``N x N`` Beneš network under the looping algorithm."""
        return cls("benes", (n,), **kwargs)

    @classmethod
    def parse(cls, text: str, **kwargs) -> "NetworkSpec":
        """Parse a ``kind:p1,p2,...`` spec string (the CLI's ``--topology``).

        >>> NetworkSpec.parse("edn:16,4,4,2").shape
        (16, 4, 4, 2)
        """
        kind, sep, params = text.partition(":")
        kind = kind.strip().lower()
        if not sep or not params.strip():
            raise ConfigurationError(
                f"cannot parse topology {text!r}: expected KIND:P1,P2,... "
                f"(kinds: {sorted(TOPOLOGY_KINDS)})"
            )
        try:
            shape = tuple(int(v) for v in params.split(","))
        except ValueError:
            raise ConfigurationError(
                f"cannot parse topology {text!r}: shape must be comma-separated integers"
            ) from None
        return cls(kind, shape, **kwargs)

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------

    @property
    def delta_shape(self) -> tuple[int, int, int]:
        """The canonical ``(a, b, l)`` of a ``delta`` spec (either shape form)."""
        if self.kind != "delta":
            raise ConfigurationError(f"{self.kind} specs have no delta shape")
        if len(self.shape) == 3:
            return self.shape
        n, b = self.shape
        return (b, b, _square_depth(n, b, "delta"))

    @property
    def dilated_shape(self) -> tuple[int, int, int, int]:
        """The canonical ``(a, b, l, d)`` of a ``dilated`` spec (either form)."""
        if self.kind != "dilated":
            raise ConfigurationError(f"{self.kind} specs have no dilation shape")
        if len(self.shape) == 4:
            return self.shape
        n, b, d = self.shape
        return (b, b, _square_depth(n, b, "dilated"), d)

    @property
    def edn_params(self) -> EDNParams:
        """The underlying :class:`EDNParams` (``edn`` and ``delta`` kinds)."""
        if self.kind == "edn":
            return EDNParams(*self.shape)
        if self.kind == "delta":
            a, b, l = self.delta_shape
            return EDNParams(a, b, 1, l)
        raise ConfigurationError(f"{self.kind} networks have no EDN parameterization")

    def stage_graph(self):
        """The compiled-routing :class:`~repro.sim.stagegraph.StageGraph`.

        Available for every unidirectional multistage kind (``edn``,
        ``delta``, ``omega``, ``dilated``) — the descriptor the batched
        backend compiles and caches a plan for.
        """
        from repro.sim import stagegraph

        if self.kind == "edn":
            return stagegraph.edn_graph(self.edn_params)
        if self.kind == "delta":
            return stagegraph.delta_graph(*self.delta_shape)
        if self.kind == "omega":
            return stagegraph.omega_graph(self.shape[0])
        if self.kind == "dilated":
            return stagegraph.dilated_graph(*self.dilated_shape)
        raise ConfigurationError(f"{self.kind} networks have no stage graph")

    @property
    def n_inputs(self) -> int:
        """Input terminals of the specified network."""
        if self.kind in ("edn", "delta"):
            return self.edn_params.num_inputs
        if self.kind == "dilated":
            a, _b, l, _d = self.dilated_shape
            return a**l
        if self.kind in ("omega", "benes"):
            return self.shape[0]
        if self.kind == "crossbar":
            return self.shape[0]
        return self.shape[0] * self.shape[1]  # clos: n * r terminals

    @property
    def n_outputs(self) -> int:
        """Output terminals of the specified network."""
        if self.kind in ("edn", "delta"):
            return self.edn_params.num_outputs
        if self.kind == "dilated":
            _a, b, l, _d = self.dilated_shape
            return b**l
        if self.kind == "crossbar":
            return self.shape[-1]
        return self.n_inputs  # omega, benes, clos are square

    @property
    def label(self) -> str:
        """The canonical ``kind:p1,p2,...`` string (round-trips through :meth:`parse`)."""
        return f"{self.kind}:{','.join(str(v) for v in self.shape)}"

    def __str__(self) -> str:
        return self.label


@dataclass(frozen=True)
class RunConfig:
    """Execution parameters for measurements and experiment runners.

    Every field except ``backend`` defaults to ``None`` = *unset*: the
    consumer fills unset fields with its own defaults via :meth:`resolve`,
    so a config built from CLI flags only overrides what the user actually
    asked for.

    Attributes
    ----------
    cycles:
        Monte-Carlo cycles per measurement point.
    seed:
        Master reproducibility seed (``int``/``SeedSequence``/``Generator``).
    jobs:
        Process fan-out for experiment grids (:class:`ParallelSweep`).
    batch:
        Cycles routed per batched-engine chunk (``1`` = per-cycle path).
    backend:
        Router backend name, or ``auto`` (batched where available,
        per-cycle fallback) — see :func:`repro.api.build_router`.
    confidence:
        Confidence level of reported intervals.
    rel_err:
        Adaptive early-stopping target: when set, ``cycles`` becomes a
        budget and each measurement stops as soon as its interval
        half-width (at ``confidence``) falls to ``rel_err`` times the
        acceptance estimate — see
        :func:`repro.sim.montecarlo.measure_acceptance` and
        ``docs/PERFORMANCE.md``.  Unset means fixed-budget measurement.
    traffic:
        Workload spec string (``"uniform:0.75"``, ``"hotspot:0.1"``,
        ``"bitrev"``, ...) naming the demand model — parsed and
        canonicalized against the :mod:`repro.workloads` registry, sized
        to the network at measurement time.  Unset means the consumer's
        default workload (uniform for :func:`repro.api.measure`).
    retry:
        Closed-loop retry policy
        (:class:`~repro.sim.closedloop.RetryPolicy` or its
        ``"ATTEMPTS[:BACKOFF[:FACTOR]]"`` spec string): blocked messages
        retry until delivered, with bounded attempts and exponential
        backoff, and the measurement reports per-message attempt and
        latency statistics — see
        :func:`repro.sim.montecarlo.measure_acceptance`.  Unset means
        open-loop sources (every cycle draws fresh traffic).
    shard_timeout:
        Seconds one sweep shard's result may take before its worker is
        declared lost and the shard is resubmitted
        (:class:`~repro.experiments.parallel.ParallelSweep`, and the
        per-cell timeout of ``repro serve``).  Unset means no deadline.
    service:
        Address of a running ``repro serve`` instance
        (``HOST:PORT`` or ``unix:/PATH``).  When set, sweeps that fan out
        measurement cells (:meth:`ParallelSweep.map_cells`) submit them to
        the service — sharing its warm plan caches and content-keyed
        result cache — instead of spawning a local pool.  Execution-only:
        results are bit-identical either way, so ``service`` (like
        ``jobs``) never enters result cache keys.
    buffer_depth:
        Per-wire FIFO depth: when set, measurements run the *buffered*
        packet-switched discipline (back-pressure, latency histograms —
        :func:`repro.sim.buffered.measure_buffered`) instead of the
        paper's drop-on-loss circuit switching.  Semantic: it changes
        results, so it is content-keyed into
        :meth:`~repro.api.jobs.SweepCell.key`.  Unset means unbuffered.

    >>> RunConfig(traffic="bit_reversal").traffic  # aliases canonicalize
    'bitrev'
    """

    cycles: Optional[int] = None
    seed: SeedLike = None
    jobs: Optional[int] = None
    batch: Optional[int] = None
    backend: str = "auto"
    confidence: Optional[float] = None
    rel_err: Optional[float] = None
    traffic: Optional[str] = None
    retry: Optional[object] = None
    shard_timeout: Optional[float] = None
    service: Optional[str] = None
    buffer_depth: Optional[int] = None

    def __post_init__(self) -> None:
        if self.rel_err is not None and not 0 < self.rel_err < 1:
            raise ConfigurationError(
                f"rel_err must lie in (0, 1), got {self.rel_err}"
            )
        if self.buffer_depth is not None:
            depth = int(self.buffer_depth)
            if depth < 1:
                raise ConfigurationError(
                    f"buffer_depth must be >= 1, got {self.buffer_depth}"
                )
            object.__setattr__(self, "buffer_depth", depth)
        if self.shard_timeout is not None and self.shard_timeout <= 0:
            raise ConfigurationError(
                f"shard_timeout must be > 0 seconds, got {self.shard_timeout}"
            )
        if self.retry is not None:
            # Accept a RetryPolicy or its spec string; store the policy
            # object (frozen, hashable) so equal configs hash equal.
            from repro.sim.closedloop import RetryPolicy

            if isinstance(self.retry, str):
                object.__setattr__(self, "retry", RetryPolicy.parse(self.retry))
            elif not isinstance(self.retry, RetryPolicy):
                raise ConfigurationError(
                    f"retry must be a RetryPolicy or spec string, "
                    f"got {self.retry!r}"
                )
        if self.traffic is not None:
            # Validate eagerly (typos surface at construction, like
            # NetworkSpec shapes) and store the canonical spec string so
            # equal configs hash equal.  Lazy import: repro.api.spec is a
            # leaf module and workloads is only needed when traffic is set.
            from repro.workloads.registry import parse_workload

            object.__setattr__(self, "traffic", parse_workload(self.traffic).label)

    def override(self, **overrides) -> "RunConfig":
        """A copy where each non-``None`` override replaces the field.

        The precedence helper for explicit keyword arguments: values the
        caller actually passed beat whatever the config carries.

        >>> cfg = RunConfig(cycles=100, seed=7)
        >>> cfg.override(cycles=500, seed=None).cycles   # passed values win
        500
        >>> cfg.override(cycles=500, seed=None).seed     # None = not passed
        7
        """
        self._check_fields(overrides)
        updates = {name: value for name, value in overrides.items() if value is not None}
        return replace(self, **updates) if updates else self

    def resolve(self, **defaults) -> "RunConfig":
        """A copy where each *unset* (``None``) field takes the given default.

        The consumer-defaults helper: ``config.resolve(cycles=60, seed=0)``
        keeps any value already set on the config and fills the rest.

        >>> resolved = RunConfig(cycles=250).resolve(cycles=60, seed=0)
        >>> (resolved.cycles, resolved.seed)             # set field kept
        (250, 0)
        """
        self._check_fields(defaults)
        updates = {
            name: value
            for name, value in defaults.items()
            if getattr(self, name) is None
        }
        return replace(self, **updates) if updates else self

    def _check_fields(self, names: dict) -> None:
        valid = {f.name for f in fields(self)}
        unknown = set(names) - valid
        if unknown:
            raise ConfigurationError(
                f"unknown RunConfig field(s) {sorted(unknown)}; valid: {sorted(valid)}"
            )
