"""The :class:`Router` protocol and the adapters that implement it.

A *router* is anything that can run circuit-switched cycles over demand
vectors.  The canonical method is batched: ``route_batch`` takes a
``(batch, N)`` demand matrix (entry ``[i, s]`` = requested output of source
``s`` in independent cycle ``i``, ``-1`` = idle) and returns a
:class:`~repro.sim.batched.BatchCycleResult`; ``route`` handles one cycle.
Natively-batched engines (:class:`~repro.sim.batched.BatchedEDN`, the
crossbar baseline) satisfy the protocol directly; everything else is
wrapped here:

* :class:`PerCycleRouter` — any per-cycle array engine (vectorized EDN,
  delta, omega, crossbar) gains an automatic batch loop;
* :class:`ReferenceEDNRouter` — the reference engine
  (:class:`~repro.core.network.EDNetwork`) and its fault-injected sibling,
  converted from per-message objects to outcome arrays;
* :class:`RearrangeableRouter` — globally-controlled Clos/Beneš fabrics:
  output conflicts resolve in label order, the surviving partial
  permutation is extended to a full one and routed conflict-free.

The delta-family baselines (``delta``/``omega``/``dilated``) need no
adapter at all: their specs compile to
:class:`~repro.sim.stagegraph.StageGraph` descriptors routed natively by
:class:`~repro.sim.batched.CompiledStageRouter` (the ``batched``
backend), with the per-cycle
:class:`~repro.sim.stagegraph.StageGraphReference` interpreter behind
:class:`PerCycleRouter` as the cross-check path (the ``vectorized``
backend).

Outcome conventions everywhere: ``output[..., s]`` is the terminal reached
(``-1`` idle/blocked); ``blocked_stage[..., s]`` is ``0`` delivered, the
1-indexed blocking stage otherwise, ``-1`` idle.
"""

from __future__ import annotations

from typing import Optional, Protocol, Union, runtime_checkable

import numpy as np

from repro.baselines.benes import BenesNetwork
from repro.baselines.clos import ClosNetwork
from repro.core.exceptions import RoutingError
from repro.core.network import EDNetwork, Message
from repro.core.faults import FaultyEDNetwork
from repro.sim.batched import BatchCycleResult, validate_demand_matrix
from repro.sim.vectorized import IDLE, VectorCycleResult

__all__ = [
    "Router",
    "PerCycleRouter",
    "ReferenceEDNRouter",
    "RearrangeableRouter",
]


@runtime_checkable
class Router(Protocol):
    """What :func:`repro.api.build_router` returns and measurements consume."""

    @property
    def n_inputs(self) -> int: ...

    @property
    def n_outputs(self) -> int: ...

    def route(
        self, dests: np.ndarray, rng: Optional[np.random.Generator] = None
    ) -> VectorCycleResult: ...

    def route_batch(
        self, dests: np.ndarray, rng: Optional[np.random.Generator] = None
    ) -> BatchCycleResult: ...


class _BatchByLoop:
    """Mixin: derive ``route_batch`` by looping ``route`` over the rows.

    The per-cycle fallback of the facade: semantics match routing each
    cycle separately with the same generator threaded through in row
    order, so per-cycle and batched paths of a wrapped engine agree
    bit for bit (deterministic disciplines) or draw identically-ordered
    streams (random priority).  ``rng`` also accepts a sequence of one
    generator per cycle (the :class:`~repro.sim.batched.BatchedEDN`
    convention the Monte-Carlo harness uses for chunk-size-invariant
    random-priority streams); row ``i`` then routes with ``rng[i]``.
    """

    def route_batch(
        self, dests: np.ndarray, rng: Optional[np.random.Generator] = None
    ) -> BatchCycleResult:
        dests, _flat, _live = validate_demand_matrix(
            dests, self.n_inputs, self.n_outputs
        )
        if rng is None or isinstance(rng, np.random.Generator):
            results = [self.route(row, rng) for row in dests]
        else:
            cycle_rngs = list(rng)
            if len(cycle_rngs) != dests.shape[0]:
                raise RoutingError(
                    f"need one generator per cycle: got {len(cycle_rngs)} "
                    f"for batch {dests.shape[0]}"
                )
            results = [
                self.route(row, cycle_rng)
                for row, cycle_rng in zip(dests, cycle_rngs)
            ]
        if results:
            output = np.stack([r.output for r in results])
            blocked = np.stack([r.blocked_stage for r in results])
        else:
            output = np.empty((0, self.n_inputs), dtype=np.int64)
            blocked = np.empty((0, self.n_inputs), dtype=np.int64)
        return BatchCycleResult(output=output, blocked_stage=blocked)


class PerCycleRouter(_BatchByLoop):
    """Adapt a per-cycle array engine to the full :class:`Router` protocol.

    ``engine`` must expose ``n_inputs``/``n_outputs`` and
    ``route(dests, rng)`` returning outcome arrays (the vectorized EDN
    result contract); batching is the generic row loop.
    """

    def __init__(self, engine):
        self.engine = engine

    @property
    def n_inputs(self) -> int:
        return self.engine.n_inputs

    @property
    def n_outputs(self) -> int:
        return self.engine.n_outputs

    def route(
        self, dests: np.ndarray, rng: Optional[np.random.Generator] = None
    ) -> VectorCycleResult:
        return self.engine.route(dests, rng)

    def __repr__(self) -> str:
        return f"PerCycleRouter({self.engine!r})"


class ReferenceEDNRouter(_BatchByLoop):
    """The reference (per-message) EDN engines behind the array protocol.

    Wraps :class:`~repro.core.network.EDNetwork` or
    :class:`~repro.core.faults.FaultyEDNetwork`; demands become
    :class:`Message` objects and per-message outcomes come back as the
    same outcome arrays every other backend produces, so equivalence
    tests can compare engines elementwise.
    """

    def __init__(self, network: Union[EDNetwork, FaultyEDNetwork]):
        self.network = network

    @property
    def n_inputs(self) -> int:
        return self.network.params.num_inputs

    @property
    def n_outputs(self) -> int:
        return self.network.params.num_outputs

    def route(
        self, dests: np.ndarray, rng: Optional[np.random.Generator] = None
    ) -> VectorCycleResult:
        dests = np.asarray(dests, dtype=np.int64)
        if dests.shape != (self.n_inputs,):
            raise RoutingError(
                f"expected demand vector of shape ({self.n_inputs},), got {dests.shape}"
            )
        params = self.network.params
        messages = [
            Message.to_output(int(s), int(d), params)
            for s, d in enumerate(dests)
            if d != IDLE
        ]
        if isinstance(self.network, FaultyEDNetwork):
            cycle = self.network.route_cycle(messages)
        else:
            cycle = self.network.route_cycle(messages, rng=rng)
        output = np.full(self.n_inputs, IDLE, dtype=np.int64)
        blocked = np.full(self.n_inputs, IDLE, dtype=np.int64)
        for outcome in cycle.outcomes:
            source = outcome.message.source
            if outcome.delivered:
                output[source] = outcome.output
                blocked[source] = 0
            else:
                blocked[source] = outcome.blocked_stage
        return VectorCycleResult(output=output, blocked_stage=blocked)

    def __repr__(self) -> str:
        return f"ReferenceEDNRouter({self.network!r})"


class RearrangeableRouter(_BatchByLoop):
    """Clos/Beneš fabrics as cycle routers over arbitrary demand vectors.

    Globally-controlled rearrangeable networks realize *any* partial
    permutation conflict-free, so the only losses are output conflicts:
    when several sources request one output, the lowest-labelled source
    wins (matching the crossbar baseline's label-priority convention) and
    the rest are blocked at stage 1.  The surviving partial permutation is
    extended to a full one, handed to the network's global routing
    algorithm (matching decomposition for Clos, the looping algorithm for
    Beneš), and verified — a routing failure raises instead of silently
    reporting blocked messages, since rearrangeability guarantees success.

    ``run_global_routing=False`` skips that per-cycle algorithm + check
    (outcomes are fully determined by the conflict loop above) — an
    opt-in for large-scale measurement where the O(N log N)-per-cycle
    Python control computation would dominate wall-clock.
    """

    def __init__(
        self,
        network: Union[ClosNetwork, BenesNetwork],
        *,
        run_global_routing: bool = True,
    ):
        self.network = network
        self.run_global_routing = run_global_routing
        if isinstance(network, ClosNetwork):
            self._terminals = network.num_terminals
        else:
            self._terminals = network.n

    @property
    def n_inputs(self) -> int:
        return self._terminals

    @property
    def n_outputs(self) -> int:
        return self._terminals

    def route(
        self, dests: np.ndarray, rng: Optional[np.random.Generator] = None
    ) -> VectorCycleResult:
        n = self._terminals
        dests = np.asarray(dests, dtype=np.int64)
        if dests.shape != (n,):
            raise RoutingError(f"expected demand vector of shape ({n},), got {dests.shape}")
        live = dests != IDLE
        if live.any() and (
            int(dests[live].min()) < 0 or int(dests[live].max()) >= n
        ):
            raise RoutingError("demand vector contains out-of-range destinations")

        output = np.full(n, IDLE, dtype=np.int64)
        blocked = np.full(n, IDLE, dtype=np.int64)
        taken = np.zeros(n, dtype=bool)
        winners: list[int] = []
        for source in np.flatnonzero(live):
            dest = int(dests[source])
            if taken[dest]:
                blocked[source] = 1  # output conflict, lowest label won
            else:
                taken[dest] = True
                winners.append(int(source))

        if self.run_global_routing:
            # Extend the surviving partial permutation to a full one:
            # unmatched sources take the free outputs in ascending order.
            perm = np.full(n, -1, dtype=np.int64)
            perm[winners] = dests[winners]
            free_outputs = iter(np.flatnonzero(~taken).tolist())
            for source in np.flatnonzero(perm < 0):
                perm[source] = next(free_outputs)
            self._route_full(perm.tolist())

        for source in winners:
            output[source] = dests[source]
            blocked[source] = 0
        return VectorCycleResult(output=output, blocked_stage=blocked)

    def _route_full(self, perm: list[int]) -> None:
        """Run and verify the global routing algorithm on a full permutation."""
        if isinstance(self.network, ClosNetwork):
            routes = self.network.route_permutation(perm)
            ok = self.network.verify(routes, perm)
        else:
            settings = self.network.route_permutation(perm)
            ok = self.network.verify(settings, perm)
        if not ok:  # pragma: no cover - rearrangeability guarantees success
            raise RoutingError(f"{self.network!r} failed to realize a permutation")

    def __repr__(self) -> str:
        return f"RearrangeableRouter({self.network!r})"
