"""repro.workloads — the pluggable traffic-model subsystem.

The single way every engine and experiment draws demand.  Two halves:

* :mod:`repro.workloads.models` — the :class:`TrafficGenerator` protocol
  and the built-in models (uniform, permutation, hot-spot, bursty,
  mixture, trace replay, structured permutations), each with a vectorized
  ``generate_batch`` so the batched engines stay on their fast path;
* :mod:`repro.workloads.registry` — string-keyed registration and
  ``name[:args]`` spec parsing: ``parse_workload`` validates, and
  ``make_traffic`` binds a spec to a concrete network's terminal counts.

Specs are plain strings, so they thread through
:class:`repro.api.RunConfig` (``traffic="hotspot:0.1"``), the CLI
(``repro route --traffic bitrev``), and
:class:`~repro.experiments.parallel.ParallelSweep` process boundaries
unchanged.  ``repro workloads`` lists the registry from the command line.

Quickstart::

    from repro.api import NetworkSpec, RunConfig, measure
    from repro.workloads import make_traffic

    spec = NetworkSpec.edn(16, 4, 4, 2)
    print(measure(spec, RunConfig(cycles=200, seed=0, traffic="hotspot:0.2")).point)

    gen = make_traffic("mixture:uniform@0.7+hotspot:0.1@0.3", 64, 64)
    print(gen.describe())               # canonical spec, round-trips via parse
"""

from repro.workloads.models import (
    IDLE,
    STRUCTURED_PATTERNS,
    BurstyTraffic,
    FixedPattern,
    HotspotTraffic,
    MixtureTraffic,
    PermutationTraffic,
    TraceTraffic,
    TrafficGenerator,
    UniformTraffic,
    structured_permutation,
)
from repro.workloads.registry import (
    WORKLOADS,
    TrafficLike,
    Workload,
    WorkloadSpec,
    available_workloads,
    make_traffic,
    parse_workload,
    register_workload,
    workload_catalog,
)

__all__ = [
    "IDLE",
    "TrafficGenerator",
    "UniformTraffic",
    "PermutationTraffic",
    "FixedPattern",
    "HotspotTraffic",
    "BurstyTraffic",
    "MixtureTraffic",
    "TraceTraffic",
    "structured_permutation",
    "STRUCTURED_PATTERNS",
    "Workload",
    "WorkloadSpec",
    "WORKLOADS",
    "TrafficLike",
    "register_workload",
    "available_workloads",
    "workload_catalog",
    "parse_workload",
    "make_traffic",
]
