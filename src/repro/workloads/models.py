"""Traffic models: the generators behind every workload spec.

Each model produces one cycle of destination demands as an integer numpy
array of length ``n_inputs`` where entry ``s`` is the requested output
terminal of source ``s`` or ``-1`` for an idle input.  The paper's two
analytic regimes are covered — uniform independent traffic (Section 3.2's
assumptions) and random permutations (Section 3.2.1 / Section 5) — plus
the hot-spot ("NUTS", Non-Uniform Traffic Spots, the paper's reference
[13]), structured-permutation, bursty on/off, mixture, and trace-replay
workloads that the wider interconnection-network literature evaluates on.

Every model implements both the single-cycle :meth:`TrafficGenerator.generate`
and a *vectorized* :meth:`TrafficGenerator.generate_batch`, so the batched
routing engines (:mod:`repro.sim.batched`) stay on their fast path: a
Monte-Carlo chunk is one numpy call, never a per-cycle Python loop.

Models are rarely constructed by hand; the string-spec registry in
:mod:`repro.workloads.registry` is the canonical front door
(``make_traffic("hotspot:0.1", 64, 64)``), and every registry-built model
reports its canonical spec string through :meth:`TrafficGenerator.describe`.

>>> import numpy as np
>>> gen = UniformTraffic(8, 8, rate=0.75)
>>> gen.generate(np.random.default_rng(0)).shape
(8,)
>>> gen.describe()
'uniform:0.75'
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from typing import Optional

import numpy as np

from repro.core.exceptions import ConfigurationError
from repro.core.labels import ilog2, is_power_of_two, reverse_bits

__all__ = [
    "IDLE",
    "TrafficGenerator",
    "UniformTraffic",
    "PermutationTraffic",
    "FixedPattern",
    "HotspotTraffic",
    "BurstyTraffic",
    "MixtureTraffic",
    "TraceTraffic",
    "structured_permutation",
    "STRUCTURED_PATTERNS",
]

IDLE = -1


class TrafficGenerator:
    """Base class: a callable source of per-cycle destination vectors."""

    def __init__(self, n_inputs: int, n_outputs: int):
        if n_inputs < 1 or n_outputs < 1:
            raise ConfigurationError("traffic needs positive terminal counts")
        self.n_inputs = n_inputs
        self.n_outputs = n_outputs

    def generate(self, rng: np.random.Generator) -> np.ndarray:
        """Return this cycle's demands (``int64[n_inputs]``, ``-1`` = idle)."""
        raise NotImplementedError

    def generate_batch(self, rng: np.random.Generator, batch: int) -> np.ndarray:
        """Return ``batch`` cycles of demands at once (``int64[batch, n_inputs]``).

        The base implementation stacks ``batch`` sequential :meth:`generate`
        calls, so any subclass batches correctly; the built-in generators
        override it with fully vectorized draws (which consume the stream in
        a different order than sequential calls — equally distributed, but a
        chunked measurement is only reproducible for a fixed chunk size).
        """
        if batch < 0:
            raise ConfigurationError(f"batch size must be non-negative, got {batch}")
        if batch == 0:
            return np.empty((0, self.n_inputs), dtype=np.int64)
        return np.stack([self.generate(rng) for _ in range(batch)])

    def describe(self) -> str:
        """The canonical workload spec string this model round-trips through.

        Every model built by :func:`repro.workloads.registry.make_traffic`
        returns a string that :func:`~repro.workloads.registry.parse_workload`
        accepts and that rebuilds an equivalent model.  Hand-constructed
        generators without a spec form raise :class:`ConfigurationError`.
        """
        raise ConfigurationError(
            f"{type(self).__name__} has no workload spec form; "
            "construct it through repro.workloads.make_traffic to get one"
        )

    def _apply_rate(self, dests: np.ndarray, rate: float, rng: np.random.Generator) -> np.ndarray:
        """Idle each entry independently with probability ``1 - rate``.

        Works on a single cycle vector or a ``(batch, n_inputs)`` matrix.
        """
        if rate >= 1.0:
            return dests
        mask = rng.random(dests.shape) < rate
        return np.where(mask, dests, IDLE)


def _check_rate(rate: float) -> float:
    if not 0.0 <= rate <= 1.0:
        raise ConfigurationError(f"rate must lie in [0, 1], got {rate}")
    return rate


def _rate_suffix(rate: float) -> str:
    return "" if rate >= 1.0 else f",rate={rate:g}"


class UniformTraffic(TrafficGenerator):
    """Uniform independent destinations at request rate ``r`` (Section 3.2).

    Every input issues a request with probability ``r``, addressed to an
    output chosen uniformly and independently — exactly the assumptions
    under which Eq. 4 is derived.
    """

    def __init__(self, n_inputs: int, n_outputs: int, rate: float = 1.0):
        super().__init__(n_inputs, n_outputs)
        self.rate = _check_rate(rate)

    def generate(self, rng: np.random.Generator) -> np.ndarray:
        dests = rng.integers(0, self.n_outputs, size=self.n_inputs, dtype=np.int64)
        return self._apply_rate(dests, self.rate, rng)

    def generate_batch(self, rng: np.random.Generator, batch: int) -> np.ndarray:
        dests = rng.integers(
            0, self.n_outputs, size=(batch, self.n_inputs), dtype=np.int64
        )
        return self._apply_rate(dests, self.rate, rng)

    def describe(self) -> str:
        return "uniform" if self.rate >= 1.0 else f"uniform:{self.rate:g}"


class PermutationTraffic(TrafficGenerator):
    """A fresh uniform random (partial) permutation every cycle.

    Requires ``n_inputs <= n_outputs``; each input gets a distinct output.
    With ``rate < 1`` a random subset of inputs participates, which is the
    "partial permutation" regime of Eq. 5.
    """

    def __init__(self, n_inputs: int, n_outputs: int, rate: float = 1.0):
        super().__init__(n_inputs, n_outputs)
        if n_inputs > n_outputs:
            raise ConfigurationError(
                f"a permutation needs n_inputs <= n_outputs, got {n_inputs} > {n_outputs}"
            )
        self.rate = _check_rate(rate)

    def generate(self, rng: np.random.Generator) -> np.ndarray:
        dests = rng.permutation(self.n_outputs)[: self.n_inputs].astype(np.int64)
        return self._apply_rate(dests, self.rate, rng)

    def generate_batch(self, rng: np.random.Generator, batch: int) -> np.ndarray:
        outputs = np.broadcast_to(
            np.arange(self.n_outputs, dtype=np.int64), (batch, self.n_outputs)
        )
        dests = rng.permuted(outputs, axis=1)[:, : self.n_inputs]
        return self._apply_rate(np.ascontiguousarray(dests), self.rate, rng)

    def describe(self) -> str:
        return "permutation" if self.rate >= 1.0 else f"permutation:{self.rate:g}"


class FixedPattern(TrafficGenerator):
    """The same destination vector every cycle (e.g. the identity of Figure 5).

    ``rate < 1`` thins the pattern independently each cycle (a random
    subset of the pattern's sources fires), which turns any structured
    permutation into its partial-participation variant.
    """

    def __init__(
        self,
        dests: np.ndarray | list[int],
        n_outputs: int,
        rate: float = 1.0,
        label: Optional[str] = None,
    ):
        dests = np.asarray(dests, dtype=np.int64)
        super().__init__(len(dests), n_outputs)
        live = dests[dests != IDLE]
        if live.size and (live.min() < 0 or live.max() >= n_outputs):
            raise ConfigurationError("fixed pattern contains out-of-range destinations")
        self.dests = dests
        self.rate = _check_rate(rate)
        self.label = label

    def generate(self, rng: np.random.Generator) -> np.ndarray:
        return self._apply_rate(self.dests.copy(), self.rate, rng)

    def generate_batch(self, rng: np.random.Generator, batch: int) -> np.ndarray:
        return self._apply_rate(np.tile(self.dests, (batch, 1)), self.rate, rng)

    def describe(self) -> str:
        if self.label is None:
            return super().describe()
        return self.label


class HotspotTraffic(TrafficGenerator):
    """Uniform traffic with a hot output: the classic NUTS stressor.

    With probability ``hot_fraction`` a request targets ``hot_output``;
    otherwise it is uniform over all outputs.  Multipath networks (``c > 1``)
    degrade far more gracefully here than single-path deltas, which is the
    paper's Section 1 motivation for EDNs; the ``nuts`` benchmark
    quantifies it.
    """

    def __init__(
        self,
        n_inputs: int,
        n_outputs: int,
        rate: float = 1.0,
        hot_fraction: float = 0.1,
        hot_output: int = 0,
    ):
        super().__init__(n_inputs, n_outputs)
        if not 0.0 <= hot_fraction <= 1.0:
            raise ConfigurationError(f"hot_fraction must lie in [0, 1], got {hot_fraction}")
        if not 0 <= hot_output < n_outputs:
            raise ConfigurationError(f"hot_output {hot_output} out of range")
        self.rate = _check_rate(rate)
        self.hot_fraction = hot_fraction
        self.hot_output = hot_output

    def generate(self, rng: np.random.Generator) -> np.ndarray:
        dests = rng.integers(0, self.n_outputs, size=self.n_inputs, dtype=np.int64)
        hot = rng.random(self.n_inputs) < self.hot_fraction
        dests[hot] = self.hot_output
        return self._apply_rate(dests, self.rate, rng)

    def generate_batch(self, rng: np.random.Generator, batch: int) -> np.ndarray:
        dests = rng.integers(
            0, self.n_outputs, size=(batch, self.n_inputs), dtype=np.int64
        )
        hot = rng.random((batch, self.n_inputs)) < self.hot_fraction
        dests[hot] = self.hot_output
        return self._apply_rate(dests, self.rate, rng)

    def describe(self) -> str:
        parts = f"hotspot:{self.hot_fraction:g}"
        if self.hot_output != 0:
            parts += f",out={self.hot_output}"
        return parts + _rate_suffix(self.rate)


class BurstyTraffic(TrafficGenerator):
    """On/off bursts: each source alternates ``on`` busy and ``off`` idle cycles.

    Per batch, every source draws an independent uniform random phase of
    the ``on + off``-cycle square wave; while *on* it issues uniform random
    destinations at rate ``rate``, while *off* it is idle.  The marginal
    offered load is ``rate * on / (on + off)`` — identical to uniform
    traffic at that rate — but requests arrive temporally clustered, the
    burst regime under which buffered MINs exhibit tree saturation (the
    hot-spot literature's companion stressor to NUTS).  Both paths are
    fully vectorized; the single-cycle path re-draws phases each call, so
    cycles are only correlated *within* a batched chunk.
    """

    def __init__(
        self,
        n_inputs: int,
        n_outputs: int,
        on: int = 8,
        off: int = 24,
        rate: float = 1.0,
    ):
        super().__init__(n_inputs, n_outputs)
        if on < 1:
            raise ConfigurationError(f"burst length `on` must be >= 1, got {on}")
        if off < 0:
            raise ConfigurationError(f"idle length `off` must be >= 0, got {off}")
        self.on = on
        self.off = off
        self.rate = _check_rate(rate)

    @property
    def duty_cycle(self) -> float:
        """Fraction of cycles each source spends in a burst."""
        return self.on / (self.on + self.off)

    def generate(self, rng: np.random.Generator) -> np.ndarray:
        return self.generate_batch(rng, 1)[0]

    def generate_batch(self, rng: np.random.Generator, batch: int) -> np.ndarray:
        if batch < 0:
            raise ConfigurationError(f"batch size must be non-negative, got {batch}")
        period = self.on + self.off
        phase = rng.integers(0, period, size=self.n_inputs)
        ticks = (phase[None, :] + np.arange(batch)[:, None]) % period
        dests = rng.integers(
            0, self.n_outputs, size=(batch, self.n_inputs), dtype=np.int64
        )
        dests = np.where(ticks < self.on, dests, IDLE)
        return self._apply_rate(dests, self.rate, rng)

    def describe(self) -> str:
        return f"bursty:on={self.on},off={self.off}" + _rate_suffix(self.rate)


class MixtureTraffic(TrafficGenerator):
    """Per-request probabilistic mixture of component workloads.

    Each input independently draws its destination from component ``k``
    with probability ``weight_k`` (weights are normalized), modelling the
    blended foreground/background loads real machines see — e.g. mostly
    uniform computation with a hot synchronization variable.  Because the
    choice is per *input*, permutation components contribute their
    marginals rather than whole-cycle permutations.
    """

    def __init__(self, components: Sequence[tuple[TrafficGenerator, float]]):
        if not components:
            raise ConfigurationError("a mixture needs at least one component")
        first = components[0][0]
        super().__init__(first.n_inputs, first.n_outputs)
        for gen, weight in components:
            if (gen.n_inputs, gen.n_outputs) != (self.n_inputs, self.n_outputs):
                raise ConfigurationError(
                    "mixture components must share terminal counts: "
                    f"{gen.n_inputs}x{gen.n_outputs} vs {self.n_inputs}x{self.n_outputs}"
                )
            if weight <= 0:
                raise ConfigurationError(f"mixture weights must be positive, got {weight}")
        total = float(sum(weight for _, weight in components))
        self.components = tuple(gen for gen, _ in components)
        self.weights = tuple(weight / total for _, weight in components)
        self._cumulative = np.cumsum(self.weights)

    def _select(self, draws: list[np.ndarray], rng: np.random.Generator) -> np.ndarray:
        stacked = np.stack(draws)
        pick = np.searchsorted(self._cumulative, rng.random(draws[0].shape), side="right")
        pick = np.minimum(pick, len(draws) - 1)  # guard the u ~ 1.0 float edge
        return np.take_along_axis(stacked, pick[None, ...], axis=0)[0]

    def generate(self, rng: np.random.Generator) -> np.ndarray:
        return self._select([gen.generate(rng) for gen in self.components], rng)

    def generate_batch(self, rng: np.random.Generator, batch: int) -> np.ndarray:
        if batch < 0:
            raise ConfigurationError(f"batch size must be non-negative, got {batch}")
        if batch == 0:
            return np.empty((0, self.n_inputs), dtype=np.int64)
        return self._select(
            [gen.generate_batch(rng, batch) for gen in self.components], rng
        )

    def describe(self) -> str:
        return "mixture:" + "+".join(
            f"{gen.describe()}@{weight:g}"
            for gen, weight in zip(self.components, self.weights)
        )


class TraceTraffic(TrafficGenerator):
    """Replay a recorded demand trace cyclically, one row per cycle.

    The trace is a ``(cycles, n_inputs)`` integer matrix (``-1`` = idle),
    typically loaded from a ``.npy`` file via :meth:`from_file` — the
    bridge for driving the networks with demands captured from real
    applications or other simulators.  A cursor walks the rows and wraps,
    so chunked and per-cycle measurements see the identical sequence.
    """

    def __init__(
        self,
        demands: np.ndarray,
        n_outputs: int,
        rate: float = 1.0,
        path: Optional[str] = None,
    ):
        demands = np.asarray(demands, dtype=np.int64)
        if demands.ndim != 2 or demands.shape[0] < 1:
            raise ConfigurationError(
                f"a trace must be a (cycles, n_inputs) matrix, got shape {demands.shape}"
            )
        super().__init__(demands.shape[1], n_outputs)
        live = demands[demands != IDLE]
        if live.size and (live.min() < 0 or live.max() >= n_outputs):
            raise ConfigurationError("trace contains out-of-range destinations")
        self.demands = demands
        self.rate = _check_rate(rate)
        self.path = path
        self._cursor = 0

    @classmethod
    def from_file(
        cls,
        path: str,
        *,
        n_inputs: Optional[int] = None,
        n_outputs: Optional[int] = None,
        rate: float = 1.0,
    ) -> "TraceTraffic":
        """Load a ``.npy`` trace, checking it fits the target network."""
        try:
            demands = np.load(path, allow_pickle=False)
        except (OSError, ValueError) as exc:
            raise ConfigurationError(f"cannot load trace {path!r}: {exc}") from None
        demands = np.asarray(demands)
        if demands.ndim == 1:
            demands = demands[None, :]  # a single recorded cycle
        if n_inputs is not None and demands.ndim == 2 and demands.shape[1] != n_inputs:
            raise ConfigurationError(
                f"trace {path!r} has {demands.shape[1]} inputs, network has {n_inputs}"
            )
        if n_outputs is None:
            n_outputs = int(demands.max()) + 1 if demands.size else 1
        return cls(demands, n_outputs, rate=rate, path=str(path))

    def generate(self, rng: np.random.Generator) -> np.ndarray:
        row = self.demands[self._cursor].copy()
        self._cursor = (self._cursor + 1) % len(self.demands)
        return self._apply_rate(row, self.rate, rng)

    def generate_batch(self, rng: np.random.Generator, batch: int) -> np.ndarray:
        if batch < 0:
            raise ConfigurationError(f"batch size must be non-negative, got {batch}")
        rows = (self._cursor + np.arange(batch)) % len(self.demands)
        self._cursor = (self._cursor + batch) % len(self.demands)
        return self._apply_rate(self.demands[rows], self.rate, rng)

    def describe(self) -> str:
        if self.path is None:
            return super().describe()
        return f"trace:{self.path}" + _rate_suffix(self.rate)


def _bit_reversal(n: int) -> np.ndarray:
    bits = ilog2(n)
    return np.array([reverse_bits(i, bits) for i in range(n)], dtype=np.int64)


def _perfect_shuffle(n: int) -> np.ndarray:
    bits = ilog2(n)
    mask = n - 1
    idx = np.arange(n)
    return (((idx << 1) | (idx >> (bits - 1))) & mask).astype(np.int64)


def _transpose(n: int) -> np.ndarray:
    """Matrix transpose on the sqrt(n) x sqrt(n) grid (swap label halves)."""
    bits = ilog2(n)
    if bits % 2:
        raise ConfigurationError(f"transpose needs an even number of label bits, n={n}")
    half = bits // 2
    low_mask = (1 << half) - 1
    idx = np.arange(n)
    return (((idx & low_mask) << half) | (idx >> half)).astype(np.int64)


def _butterfly(n: int) -> np.ndarray:
    """Swap the most and least significant label bits."""
    bits = ilog2(n)
    idx = np.arange(n)
    msb = (idx >> (bits - 1)) & 1
    lsb = idx & 1
    cleared = idx & ~((1 << (bits - 1)) | 1)
    return (cleared | (lsb << (bits - 1)) | msb).astype(np.int64)


def _complement(n: int) -> np.ndarray:
    """Invert every label bit (equals ``reversal`` for power-of-two n)."""
    return (np.arange(n) ^ (n - 1)).astype(np.int64)


def _tornado(n: int) -> np.ndarray:
    """Rotate by ceil(n/2) - 1: the worst-case offset of ring-like fabrics."""
    offset = (n + 1) // 2 - 1
    return ((np.arange(n) + offset) % n).astype(np.int64)


STRUCTURED_PATTERNS: dict[str, Callable[[int], np.ndarray]] = {
    "identity": lambda n: np.arange(n, dtype=np.int64),
    "reversal": lambda n: np.arange(n - 1, -1, -1, dtype=np.int64),
    "bit_reversal": _bit_reversal,
    "shuffle": _perfect_shuffle,
    "transpose": _transpose,
    "butterfly": _butterfly,
    "complement": _complement,
    "tornado": _tornado,
}


def structured_permutation(
    name: str, n: int, rate: float = 1.0, label: Optional[str] = None
) -> FixedPattern:
    """A named structured permutation over ``n`` (a power of two) terminals.

    Available: ``identity``, ``reversal``, ``bit_reversal``, ``shuffle``,
    ``transpose`` (even label width only), ``butterfly``, ``complement``,
    ``tornado``.  These are the standard adversarial patterns for
    banyan-class networks; the paper's Figure 5 discussion ("incapable of
    performing the identity permutation in one pass") is the ``identity``
    entry.  ``rate < 1`` yields the pattern's partial variant.

    ``label`` overrides the spec-name stem in :meth:`FixedPattern.describe`
    (the registry passes its canonical workload name, e.g. ``bitrev`` for
    the ``bit_reversal`` pattern).
    """
    if not is_power_of_two(n):
        raise ConfigurationError(f"structured permutations need power-of-two size, got {n}")
    try:
        builder = STRUCTURED_PATTERNS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown pattern {name!r}; available: {sorted(STRUCTURED_PATTERNS)}"
        ) from None
    stem = label if label is not None else name
    return FixedPattern(
        builder(n), n, rate=rate, label=stem if rate >= 1.0 else f"{stem}:{rate:g}"
    )
