"""String-keyed workload registry and spec parsing.

A *workload* is a named way of turning terminal counts into a
:class:`~repro.workloads.models.TrafficGenerator`.  Workload specs are
``name[:args]`` strings — the CLI's ``--traffic`` flag, the ``traffic=``
field of :class:`repro.api.RunConfig`, and the experiment grids all speak
them — with comma-separated positional and ``key=value`` arguments:

=============== ====================================== =========================
spec            model                                  example
=============== ====================================== =========================
``uniform``     :class:`UniformTraffic`                ``uniform:0.75``
``permutation`` :class:`PermutationTraffic`            ``permutation:0.5``
``hotspot``     :class:`HotspotTraffic`                ``hotspot:0.2,out=3``
``bursty``      :class:`BurstyTraffic`                 ``bursty:on=8,off=24``
``mixture``     :class:`MixtureTraffic`                ``mixture:uniform@0.7+hotspot:0.1@0.3``
``trace``       :class:`TraceTraffic`                  ``trace:demands.npy``
patterns        :class:`FixedPattern`                  ``bitrev``, ``transpose``,
                                                       ``shuffle``, ``tornado``, ...
=============== ====================================== =========================

:func:`parse_workload` validates a spec's syntax without needing a network
(specs stay plain strings, so they pickle across
:class:`~repro.experiments.parallel.ParallelSweep` process boundaries and
hash into :class:`~repro.api.RunConfig`); :func:`make_traffic` binds one to
a concrete network's terminal counts.  Every registry-built model reports
its canonical spec through ``describe()``, which re-parses to an
equivalent model.

>>> parse_workload("hotspot:0.1").label
'hotspot:0.1'
>>> make_traffic("bitrev", 16, 16).describe()
'bitrev'
>>> parse_workload("bit_reversal").name  # aliases resolve
'bitrev'
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Union

from repro.core.exceptions import ConfigurationError
from repro.workloads.models import (
    BurstyTraffic,
    HotspotTraffic,
    MixtureTraffic,
    PermutationTraffic,
    TraceTraffic,
    TrafficGenerator,
    UniformTraffic,
    structured_permutation,
)

__all__ = [
    "Workload",
    "WorkloadSpec",
    "WORKLOADS",
    "TrafficLike",
    "register_workload",
    "available_workloads",
    "workload_catalog",
    "parse_workload",
    "make_traffic",
]

#: Anything the measurement APIs accept as a traffic source.
TrafficLike = Union[str, "WorkloadSpec", TrafficGenerator]


class _ArgSpec:
    """Declarative grammar for a workload's comma-separated argument list.

    ``positional`` names the arguments that may be given bare, in order;
    every argument may also be given as ``key=value``.  Calling the spec
    parses an argument string into a kwargs dict, raising
    :class:`ConfigurationError` on unknown keys, duplicates, or bad values
    — which makes it double as the parse-time syntax check.
    """

    def __init__(self, positional: tuple[str, ...] = (), **casts: Callable[[str], object]):
        self.positional = positional
        self.casts = casts

    def __call__(self, workload: str, argtext: str) -> dict:
        kwargs: dict[str, object] = {}
        if not argtext:
            return kwargs
        saw_keyword = False
        for index, token in enumerate(argtext.split(",")):
            token = token.strip()
            key, sep, value = token.partition("=")
            if sep:
                key, value = key.strip(), value.strip()
                saw_keyword = True
            elif saw_keyword:
                raise ConfigurationError(
                    f"{workload}: positional argument {token!r} after key=value arguments"
                )
            elif index >= len(self.positional):
                raise ConfigurationError(
                    f"{workload}: too many positional arguments in {argtext!r} "
                    f"(positional: {list(self.positional)})"
                )
            else:
                key, value = self.positional[index], token
            if key not in self.casts:
                raise ConfigurationError(
                    f"{workload}: unknown argument {key!r}; accepts {sorted(self.casts)}"
                )
            if key in kwargs:
                raise ConfigurationError(f"{workload}: duplicate argument {key!r}")
            try:
                kwargs[key] = self.casts[key](value)
            except (TypeError, ValueError):
                raise ConfigurationError(
                    f"{workload}: cannot parse argument {key}={value!r}"
                ) from None
        return kwargs


@dataclass(frozen=True)
class Workload:
    """One registered traffic model.

    ``builder`` turns ``(n_inputs, n_outputs, argtext)`` into a generator;
    ``check`` syntax-validates ``argtext`` without a network (used by
    :func:`parse_workload`).  ``summary`` is the one-line description the
    CLI's ``repro workloads`` listing shows, sourced from the model's
    docstring.
    """

    name: str
    syntax: str
    summary: str
    builder: Callable[[int, int, str], TrafficGenerator]
    check: Callable[[str], None]
    aliases: tuple[str, ...] = ()


#: name -> Workload, in registration order.
WORKLOADS: dict[str, Workload] = {}

#: alias -> canonical name.
_ALIASES: dict[str, str] = {}


def register_workload(
    name: str,
    *,
    syntax: str,
    summary: str,
    aliases: tuple[str, ...] = (),
    check: Callable[[str], None] | None = None,
):
    """Register ``fn`` as the builder of workload ``name`` (decorator)."""

    def decorate(fn: Callable[[int, int, str], TrafficGenerator]):
        for key in (name, *aliases):
            if key in WORKLOADS or key in _ALIASES:
                raise ConfigurationError(f"workload {key!r} already registered")
        WORKLOADS[name] = Workload(
            name=name,
            syntax=syntax,
            summary=summary,
            builder=fn,
            check=check if check is not None else (lambda argtext: None),
            aliases=tuple(aliases),
        )
        for alias in aliases:
            _ALIASES[alias] = name
        return fn

    return decorate


@dataclass(frozen=True)
class WorkloadSpec:
    """A parsed ``name[:args]`` workload spec — hashable and picklable.

    >>> spec = WorkloadSpec("hotspot", "0.2,out=3")
    >>> spec.label
    'hotspot:0.2,out=3'
    >>> spec.build(8, 8).hot_output
    3
    """

    name: str
    args: str = ""

    @property
    def label(self) -> str:
        """The canonical spec string (round-trips through :func:`parse_workload`)."""
        return f"{self.name}:{self.args}" if self.args else self.name

    def build(self, n_inputs: int, n_outputs: int) -> TrafficGenerator:
        """Instantiate the model for a concrete network size."""
        return WORKLOADS[self.name].builder(n_inputs, n_outputs, self.args)

    def __str__(self) -> str:
        return self.label


def available_workloads() -> list[str]:
    """Registered workload names, sorted."""
    return sorted(WORKLOADS)


def workload_catalog() -> list[Workload]:
    """Every registered workload, in registration order (the CLI listing)."""
    return list(WORKLOADS.values())


def parse_workload(text: Union[str, WorkloadSpec]) -> WorkloadSpec:
    """Parse and syntax-validate a ``name[:args]`` workload spec string.

    Resolves aliases to canonical names and runs the workload's argument
    checker, but does not bind terminal counts — size-dependent rules
    (square networks, power-of-two patterns, trace file existence) apply
    at :meth:`WorkloadSpec.build` time.

    >>> parse_workload("bursty:on=8,off=24").name
    'bursty'
    >>> parse_workload("mixture:uniform@0.7+hotspot:0.1@0.3").args
    'uniform@0.7+hotspot:0.1@0.3'
    """
    if isinstance(text, WorkloadSpec):
        return text
    name, _sep, args = text.strip().partition(":")
    name = name.strip().lower()
    args = args.strip()
    name = _ALIASES.get(name, name)
    if name not in WORKLOADS:
        raise ConfigurationError(
            f"unknown workload {name!r}; available: {available_workloads()} "
            f"(aliases: {sorted(_ALIASES)})"
        )
    WORKLOADS[name].check(args)
    return WorkloadSpec(name, args)


def make_traffic(spec: TrafficLike, n_inputs: int, n_outputs: int) -> TrafficGenerator:
    """Turn a workload spec (or an existing generator) into a sized generator.

    The single entry point every measurement layer funnels through:
    strings and :class:`WorkloadSpec` values are parsed and built for the
    given terminal counts; an already-built :class:`TrafficGenerator` is
    size-checked and passed through.

    >>> make_traffic("uniform:0.5", 64, 64).rate
    0.5
    """
    if isinstance(spec, TrafficGenerator):
        if spec.n_inputs != n_inputs:
            raise ConfigurationError(
                f"traffic generates {spec.n_inputs} inputs, network has {n_inputs}"
            )
        return spec
    return parse_workload(spec).build(n_inputs, n_outputs)


# ----------------------------------------------------------------------
# Built-in workloads
# ----------------------------------------------------------------------


def _first_line(obj) -> str:
    return (obj.__doc__ or "").strip().splitlines()[0]


def _checked(argspec: _ArgSpec, name: str) -> Callable[[str], None]:
    def check(argtext: str) -> None:
        argspec(name, argtext)

    return check


_UNIFORM_ARGS = _ArgSpec(("rate",), rate=float)


@register_workload(
    "uniform",
    syntax="uniform[:RATE]",
    summary=_first_line(UniformTraffic),
    check=_checked(_UNIFORM_ARGS, "uniform"),
)
def _build_uniform(n_inputs: int, n_outputs: int, argtext: str) -> TrafficGenerator:
    return UniformTraffic(n_inputs, n_outputs, **_UNIFORM_ARGS("uniform", argtext))


_PERMUTATION_ARGS = _ArgSpec(("rate",), rate=float)


@register_workload(
    "permutation",
    syntax="permutation[:RATE]",
    summary=_first_line(PermutationTraffic),
    aliases=("perm",),
    check=_checked(_PERMUTATION_ARGS, "permutation"),
)
def _build_permutation(n_inputs: int, n_outputs: int, argtext: str) -> TrafficGenerator:
    return PermutationTraffic(
        n_inputs, n_outputs, **_PERMUTATION_ARGS("permutation", argtext)
    )


_HOTSPOT_ARGS = _ArgSpec(("frac",), frac=float, out=int, rate=float)


@register_workload(
    "hotspot",
    syntax="hotspot[:FRAC][,out=K][,rate=R]",
    summary=_first_line(HotspotTraffic),
    aliases=("nuts",),
    check=_checked(_HOTSPOT_ARGS, "hotspot"),
)
def _build_hotspot(n_inputs: int, n_outputs: int, argtext: str) -> TrafficGenerator:
    kwargs = _HOTSPOT_ARGS("hotspot", argtext)
    return HotspotTraffic(
        n_inputs,
        n_outputs,
        rate=kwargs.get("rate", 1.0),
        hot_fraction=kwargs.get("frac", 0.1),
        hot_output=kwargs.get("out", 0),
    )


_BURSTY_ARGS = _ArgSpec(("on", "off"), on=int, off=int, rate=float)


@register_workload(
    "bursty",
    syntax="bursty[:on=B,off=I][,rate=R]",
    summary=_first_line(BurstyTraffic),
    check=_checked(_BURSTY_ARGS, "bursty"),
)
def _build_bursty(n_inputs: int, n_outputs: int, argtext: str) -> TrafficGenerator:
    return BurstyTraffic(n_inputs, n_outputs, **_BURSTY_ARGS("bursty", argtext))


#: (workload name, STRUCTURED_PATTERNS key, aliases, one-line summary).
_PATTERN_WORKLOADS: tuple[tuple[str, str, tuple[str, ...], str], ...] = (
    (
        "identity",
        "identity",
        (),
        "The identity permutation s -> s (Figure 5's one-pass blocker).",
    ),
    (
        "reversal",
        "reversal",
        (),
        "Index reversal s -> N-1-s (equals bit-complement for power-of-two N).",
    ),
    (
        "bitrev",
        "bit_reversal",
        ("bit_reversal",),
        "Bit-reversal permutation (FFT data exchange; a banyan worst case).",
    ),
    (
        "shuffle",
        "shuffle",
        (),
        "Perfect shuffle (left label rotation; Lawrie's omega alignment).",
    ),
    (
        "transpose",
        "transpose",
        (),
        "Matrix transpose on the sqrt(N) x sqrt(N) grid (swap label halves).",
    ),
    (
        "butterfly",
        "butterfly",
        (),
        "Butterfly exchange: swap the most and least significant label bits.",
    ),
    (
        "complement",
        "complement",
        (),
        "Bit-complement s -> ~s: every source crosses the whole fabric.",
    ),
    (
        "tornado",
        "tornado",
        (),
        "Tornado rotation s -> s + ceil(N/2) - 1 (adaptive-routing stressor).",
    ),
)

_PATTERN_ARGS = _ArgSpec(("rate",), rate=float)


def _register_pattern(name: str, key: str, aliases: tuple[str, ...], summary: str) -> None:
    @register_workload(
        name,
        syntax=f"{name}[:RATE]",
        summary=summary,
        aliases=aliases,
        check=_checked(_PATTERN_ARGS, name),
    )
    def build(n_inputs: int, n_outputs: int, argtext: str) -> TrafficGenerator:
        rate = _PATTERN_ARGS(name, argtext).get("rate", 1.0)
        if n_inputs != n_outputs:
            raise ConfigurationError(
                f"{name} needs a square network, got {n_inputs}x{n_outputs}"
            )
        return structured_permutation(key, n_outputs, rate=rate, label=name)


for _name, _key, _aliases, _summary in _PATTERN_WORKLOADS:
    _register_pattern(_name, _key, _aliases, _summary)


def _split_mixture(argtext: str) -> list[tuple[WorkloadSpec, float]]:
    if not argtext:
        raise ConfigurationError(
            "mixture needs components: mixture:SPEC@WEIGHT+SPEC@WEIGHT+..."
        )
    terms = []
    for term in argtext.split("+"):
        spec_text, sep, weight_text = term.rpartition("@")
        if not sep:
            raise ConfigurationError(
                f"mixture component {term!r} is not of the form SPEC@WEIGHT"
            )
        try:
            weight = float(weight_text)
        except ValueError:
            raise ConfigurationError(
                f"mixture component {term!r} has a non-numeric weight"
            ) from None
        sub = parse_workload(spec_text)
        if sub.name == "mixture":
            raise ConfigurationError("mixture components cannot themselves be mixtures")
        terms.append((sub, weight))
    return terms


def _check_mixture(argtext: str) -> None:
    _split_mixture(argtext)


@register_workload(
    "mixture",
    syntax="mixture:SPEC@W+SPEC@W[+...]",
    summary=_first_line(MixtureTraffic),
    aliases=("mix",),
    check=_check_mixture,
)
def _build_mixture(n_inputs: int, n_outputs: int, argtext: str) -> TrafficGenerator:
    return MixtureTraffic(
        [(sub.build(n_inputs, n_outputs), weight) for sub, weight in _split_mixture(argtext)]
    )


def _split_trace_args(argtext: str) -> tuple[str, float]:
    # The path may contain anything but a trailing ",rate=" marker, so the
    # generic comma grammar does not apply here.
    path, sep, rate_text = argtext.partition(",rate=")
    if not path:
        raise ConfigurationError("trace needs a file path: trace:FILE.npy[,rate=R]")
    rate = 1.0
    if sep:
        try:
            rate = float(rate_text)
        except ValueError:
            raise ConfigurationError(
                f"trace: cannot parse argument rate={rate_text!r}"
            ) from None
    return path, rate


def _check_trace(argtext: str) -> None:
    _split_trace_args(argtext)


@register_workload(
    "trace",
    syntax="trace:FILE.npy[,rate=R]",
    summary=_first_line(TraceTraffic),
    check=_check_trace,
)
def _build_trace(n_inputs: int, n_outputs: int, argtext: str) -> TrafficGenerator:
    path, rate = _split_trace_args(argtext)
    return TraceTraffic.from_file(
        path, n_inputs=n_inputs, n_outputs=n_outputs, rate=rate
    )
