"""Command-line interface: ``repro <command>`` (or ``python -m repro``).

Gives a downstream user the library's main entry points without writing
code:

* ``describe A B C L`` — structure, costs and key metrics of an EDN;
* ``pa A B C L [-r RATE]`` — analytic acceptance (Eq. 4/5) plus an optional
  Monte-Carlo check;
* ``route -t KIND:SHAPE ...`` — measure any topology through the
  :mod:`repro.api` facade; repeat ``-t`` for one-line EDN-vs-delta-vs-
  crossbar-vs-Clos comparisons, ``--backend`` to pin an engine, repeat
  ``--traffic`` for per-workload comparisons
  (``--traffic hotspot:0.1 --traffic bitrev``), ``--faults``/
  ``--fault-rate`` to kill wires (routed on the compiled fault-masked
  kernels), and ``--retry`` for closed-loop retrying sources;
* ``workloads`` — list the registered traffic models and their spec
  syntax, or validate one spec (``repro workloads hotspot:0.2``);
* ``experiment ID ...`` — regenerate paper figures (see ``experiment
  --list``); ``--json``/``--csv`` emit machine-readable figure data;
* ``maspar`` — the Section 5 MasPar MP-1 drain, model and simulation;
* ``mimd A B C L -r RATE`` — Section 4 resubmission analysis;
* ``serve`` — run the sharded simulation service (:mod:`repro.serve`):
  content-keyed result cache, supervised worker pool, streaming partials;
* ``submit`` — send a topology x workload grid to a running service and
  print the results (``--partials`` streams convergence checkpoints);
* ``status`` — a running service's stats (queue depth, worker
  utilization, dedupe rate, per-worker plan-cache hit rates);
* ``cache`` — the in-process routing-plan cache counters.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys

from repro.core.analysis import acceptance_probability, permutation_acceptance
from repro.core.config import EDNParams
from repro.core.cost import cost_report
from repro.viz.ascii_art import render_network
from repro.viz.tables import format_table

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Expanded Delta Networks (Alleyne & Scherson 1992) — reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    describe = sub.add_parser("describe", help="structure and costs of an EDN(a,b,c,l)")
    for name in ("a", "b", "c", "l"):
        describe.add_argument(name, type=int)

    pa = sub.add_parser("pa", help="acceptance probability of an EDN(a,b,c,l)")
    for name in ("a", "b", "c", "l"):
        pa.add_argument(name, type=int)
    pa.add_argument("-r", "--rate", type=float, default=1.0, help="request rate (default 1.0)")
    pa.add_argument(
        "--simulate", type=int, metavar="CYCLES", default=0,
        help="also Monte-Carlo measure over CYCLES cycles",
    )
    pa.add_argument(
        "--batch", type=int, default=None, metavar="CYCLES",
        help="cycles routed per batched chunk (default: auto; 1 = per-cycle engine)",
    )
    pa.add_argument(
        "--backend", default="auto", metavar="NAME",
        help="router backend for --simulate (default: auto; see `repro route`)",
    )

    route = sub.add_parser(
        "route",
        help="measure acceptance of arbitrary topologies via repro.api",
        description=(
            "Monte-Carlo acceptance of one or more topologies under one or "
            "more workloads.  Topologies are KIND:P1,P2,... specs — e.g. "
            "edn:16,4,4,2  delta:4096,4  omega:64  dilated:4096,4,2  "
            "crossbar:64  clos:8,8  benes:64 — and workloads are "
            "NAME[:ARGS] specs (see `repro workloads`), so cross-network "
            "and cross-workload comparisons are one-liners.  The whole "
            "delta family (delta/omega/dilated) compiles to the batched "
            "stage-graph kernels, so baseline sweeps run on the fast path."
        ),
    )
    route.add_argument(
        "-t", "--topology", action="append", required=True, metavar="KIND:SHAPE",
        help="topology spec (repeatable; e.g. edn:16,4,4,2, delta:4096,4, "
             "dilated:4096,4,2, clos:8,8)",
    )
    route.add_argument(
        "--backend", default="auto", metavar="NAME",
        help="router backend: auto, native, batched, vectorized, reference, "
             "matching, looping (native needs numba or a C toolchain)",
    )
    route.add_argument(
        "--traffic", action="append", metavar="SPEC", default=None,
        help="workload spec (repeatable; e.g. hotspot:0.1, bitrev, "
             "bursty:on=8,off=24; see `repro workloads`; default: uniform "
             "at the -r rate)",
    )
    route.add_argument(
        "-r", "--rate", type=float, default=1.0,
        help="request rate of the default uniform workload (default 1.0; "
             "explicit --traffic specs carry their own rate arguments)",
    )
    route.add_argument("--cycles", type=int, default=200, help="Monte-Carlo cycles (default 200)")
    route.add_argument("--seed", type=int, default=0, help="reproducibility seed (default 0)")
    route.add_argument(
        "--batch", type=int, default=None, metavar="CYCLES",
        help="cycles routed per batched chunk (default: auto)",
    )
    route.add_argument(
        "--priority", default="label", choices=["label", "random"],
        help="contention discipline (default: label)",
    )
    route.add_argument(
        "--rel-err", type=float, default=None, metavar="FRAC",
        help="adaptive early stopping: treat --cycles as a budget and stop "
             "each measurement once its CI half-width falls to FRAC of the "
             "acceptance estimate (e.g. 0.01)",
    )
    route.add_argument(
        "--faults", action="append", default=None, metavar="S:W:P[,S:W:P...]",
        help="inject dead wires (repeatable): STAGE:SWITCH:WIRE triples, "
             "comma-separated — e.g. --faults 1:0:3,2:5:0; stage-graph "
             "kinds only (edn/delta/omega/dilated), routed on the compiled "
             "fault-masked kernels",
    )
    route.add_argument(
        "--fault-rate", default=None, metavar="P[@SEED]",
        help="additionally kill each interior wire with probability P, "
             "drawn reproducibly from SEED (default 0) — e.g. "
             "--fault-rate 0.02@7",
    )
    route.add_argument(
        "--buffer-depth", type=int, default=None, metavar="DEPTH",
        help="buffered packet switching: per-wire FIFOs of DEPTH packets "
             "with back-pressure instead of drop-on-loss; reports "
             "throughput, latency percentiles, occupancy, and fault "
             "drops (stage-graph kinds only; composes with --faults / "
             "--fault-rate)",
    )
    route.add_argument(
        "--retry", default=None, metavar="N[:BACKOFF[:FACTOR]]",
        help="closed-loop sources: blocked messages retry until delivered, "
             "up to N attempts, with optional exponential backoff — e.g. "
             "--retry 8:1:2; adds per-message attempt/latency columns",
    )
    route.add_argument(
        "--shard-timeout", type=float, default=None, metavar="SECONDS",
        help="deadline per parallel sweep shard / service cell (execution "
             "knob only: never changes results or cache keys)",
    )
    route.add_argument(
        "--cache-stats", action="store_true",
        help="print routing-plan cache hit/miss counters after the run",
    )

    workloads = sub.add_parser(
        "workloads",
        help="list registered traffic models, or validate one spec",
        description=(
            "With no arguments (or --list), print the workload registry: "
            "every traffic model's spec syntax and description.  With a "
            "SPEC, parse and build it, reporting the canonical form and a "
            "sample cycle."
        ),
    )
    workloads.add_argument(
        "spec", nargs="?", metavar="SPEC",
        help="workload spec to validate (e.g. hotspot:0.2, mixture:uniform@0.7+hotspot:0.1@0.3)",
    )
    workloads.add_argument(
        "--list", action="store_true", help="print the registry (the default action)",
    )
    workloads.add_argument(
        "-n", "--terminals", type=int, default=64, metavar="N",
        help="terminal count used to build/sample a SPEC (default 64)",
    )

    experiment = sub.add_parser("experiment", help="regenerate paper figures")
    experiment.add_argument("ids", nargs="*", help="experiment IDs (empty = all)")
    experiment.add_argument("--list", action="store_true", help="list available IDs")
    experiment.add_argument(
        "-j", "--jobs", type=int, default=None, metavar="N",
        help="fan Monte-Carlo grids out over N processes (default: 1)",
    )
    experiment.add_argument(
        "--batch", type=int, default=None, metavar="CYCLES",
        help="cycles per batched-routing chunk for Monte-Carlo experiments",
    )
    experiment.add_argument(
        "--traffic", default=None, metavar="SPEC",
        help="workload spec override for experiments that honor config "
             "traffic (e.g. workload_matrix; see `repro workloads`)",
    )
    experiment.add_argument(
        "--rel-err", type=float, default=None, metavar="FRAC",
        help="adaptive early stopping for Monte-Carlo experiments: cycle "
             "budgets become ceilings, each grid point stops when its CI "
             "half-width falls to FRAC of its estimate",
    )
    experiment.add_argument(
        "--shard-timeout", type=float, default=None, metavar="SECONDS",
        help="deadline per parallel sweep shard (the shard is retried once "
             "on a fresh pool, then the sweep fails)",
    )
    experiment.add_argument(
        "--service", default=None, metavar="ADDR",
        help="route cell-based experiment grids (e.g. workload_matrix) to "
             "a running `repro serve` instance at HOST:PORT or unix:/PATH",
    )
    output = experiment.add_mutually_exclusive_group()
    output.add_argument(
        "--json", action="store_true",
        help="emit results as a JSON array instead of rendered reports",
    )
    output.add_argument(
        "--csv", action="store_true",
        help="emit series/table CSV instead of rendered reports",
    )

    maspar = sub.add_parser("maspar", help="Section 5: MasPar MP-1 drain model + simulation")
    maspar.add_argument(
        "--runs", type=int, default=3, help="random permutations to drain (default 3)"
    )
    maspar.add_argument(
        "--batch", type=int, default=None, metavar="RUNS",
        help="drain RUNS permutations side-by-side on the batched engine",
    )

    mimd = sub.add_parser("mimd", help="Section 4: resubmission Markov analysis")
    for name in ("a", "b", "c", "l"):
        mimd.add_argument(name, type=int)
    mimd.add_argument("-r", "--rate", type=float, default=0.5)

    serve = sub.add_parser(
        "serve",
        help="run the sharded simulation service",
        description=(
            "Long-running simulation-as-a-service: accepts measurement "
            "cells from concurrent clients over JSON lines (TCP or Unix "
            "socket), dedupes them through a content-keyed result cache, "
            "shards misses across a supervised worker pool with warm "
            "per-worker routing-plan caches, and streams partial results "
            "at adaptive-stopping chunk boundaries.  Stop with Ctrl-C or "
            "a client 'shutdown' message."
        ),
    )
    serve.add_argument(
        "--address", default=None, metavar="ADDR",
        help="listen address: HOST:PORT (port 0 = ephemeral) or "
             "unix:/PATH (default 127.0.0.1:8753)",
    )
    serve.add_argument(
        "-w", "--workers", type=int, default=None, metavar="N",
        help="worker processes (default: all cores)",
    )
    serve.add_argument(
        "--cache-size", type=int, default=None, metavar="CELLS",
        help="result-cache capacity in cells (default 65536)",
    )
    serve.add_argument(
        "--shard-timeout", type=float, default=None, metavar="SECONDS",
        help="deadline per cell before its worker is declared stuck and "
             "the cell resubmitted (default: none)",
    )
    serve.add_argument(
        "--max-poison-attempts", type=int, default=None, metavar="N",
        help="pool-killing attempts before a cell is quarantined with a "
             "structured error (default: the supervisor retry bound)",
    )
    serve.add_argument(
        "--drain-timeout", type=float, default=5.0, metavar="SECONDS",
        help="graceful-shutdown wait for in-flight cells (default 5)",
    )

    chaos = sub.add_parser(
        "chaos",
        help="deterministic fault-injection smoke against the service",
        description=(
            "Runs a chaos scenario against a live in-process simulation "
            "service: worker kills, stalls past the shard timeout, a "
            "connection dropped mid-stream, a malformed frame, and a "
            "poison cell that must be quarantined.  Verifies the "
            "robustness invariants — zero lost cells, byte-identical "
            "results vs an undisturbed run, bounded resubmissions — and "
            "exits non-zero on any violation.  Scenarios are JSON "
            "(see docs/ROBUSTNESS.md); the built-in smoke runs by default."
        ),
    )
    chaos.add_argument(
        "--scenario", default=None, metavar="PATH",
        help="JSON scenario file (default: the built-in smoke scenario)",
    )
    chaos.add_argument(
        "--seed", type=int, default=0,
        help="chaos seed: pins backoff jitter and the scenario seed (default 0)",
    )
    chaos.add_argument(
        "--json", action="store_true", help="emit the raw report JSON",
    )

    submit = sub.add_parser(
        "submit",
        help="send a topology x workload grid to a running service",
        description=(
            "Builds the same measurement cells `repro route` would run "
            "inline — one per (topology, traffic) pair, seeded "
            "positionally from --seed — submits them to a running "
            "`repro serve` instance, and prints the result table.  "
            "Results are bit-identical to the inline path; repeated "
            "submissions hit the service's result cache."
        ),
    )
    submit.add_argument(
        "-t", "--topology", action="append", required=True, metavar="KIND:SHAPE",
        help="topology spec (repeatable; see `repro route`)",
    )
    submit.add_argument(
        "--traffic", action="append", metavar="SPEC", default=None,
        help="workload spec (repeatable; default: uniform)",
    )
    submit.add_argument(
        "--address", default=None, metavar="ADDR",
        help="service address, HOST:PORT or unix:/PATH (default 127.0.0.1:8753)",
    )
    submit.add_argument("--cycles", type=int, default=200, help="Monte-Carlo cycles (default 200)")
    submit.add_argument("--seed", type=int, default=0, help="master seed (default 0)")
    submit.add_argument(
        "--batch", type=int, default=None, metavar="CYCLES",
        help="cycles routed per batched chunk (default: auto)",
    )
    submit.add_argument(
        "--backend", default="auto", metavar="NAME",
        help="router backend (default: auto)",
    )
    submit.add_argument(
        "--rel-err", type=float, default=None, metavar="FRAC",
        help="adaptive early stopping target (see `repro route`)",
    )
    submit.add_argument(
        "--partials", action="store_true",
        help="print streamed partial results (convergence checkpoints) "
             "as they arrive",
    )

    status = sub.add_parser(
        "status",
        help="stats of a running simulation service",
        description=(
            "Queue depth, worker utilization, dedupe rate, result-cache "
            "and per-worker routing-plan-cache counters of a running "
            "`repro serve` instance."
        ),
    )
    status.add_argument(
        "--address", default=None, metavar="ADDR",
        help="service address, HOST:PORT or unix:/PATH (default 127.0.0.1:8753)",
    )
    status.add_argument(
        "--json", action="store_true", help="emit the raw stats JSON",
    )

    cache = sub.add_parser(
        "cache",
        help="in-process routing-plan cache counters",
        description=(
            "Hits, misses, and size of this process's routing-plan cache "
            "(repro.sim.plan) — the same counters the service's stats "
            "endpoint reports per worker.  Mostly useful after "
            "`repro route --cache-stats` or from code; a fresh CLI "
            "process naturally starts empty."
        ),
    )

    return parser


def _cmd_describe(args: argparse.Namespace) -> int:
    params = EDNParams(args.a, args.b, args.c, args.l)
    print(render_network(params))
    report = cost_report(params)
    print()
    print(
        format_table(
            ["metric", "value"],
            [
                ["crosspoints (Eq. 2)", report["crosspoints"]],
                ["wires (Eq. 3)", report["wires"]],
                ["crossbar-equivalent crosspoints", report["crossbar_equivalent_crosspoints"]],
                ["cost ratio vs crossbar", report["cost_ratio_vs_crossbar"]],
                ["PA(1) (Eq. 4)", acceptance_probability(params, 1.0)],
                ["PAp(1) (Eq. 5)", permutation_acceptance(params, 1.0)],
            ],
        )
    )
    return 0


def _cmd_pa(args: argparse.Namespace) -> int:
    params = EDNParams(args.a, args.b, args.c, args.l)
    print(f"{params}: PA({args.rate:g}) = {acceptance_probability(params, args.rate):.6f}  "
          f"PAp({args.rate:g}) = {permutation_acceptance(params, args.rate):.6f}")
    if args.simulate:
        # import from the leaf: the package attribute named ``measure`` is
        # the submodule once anything has imported it, not the function
        from repro.api import NetworkSpec, RunConfig
        from repro.api.measure import measure

        measurement = measure(
            NetworkSpec.edn(args.a, args.b, args.c, args.l),
            RunConfig(
                cycles=args.simulate, seed=0, batch=args.batch, backend=args.backend
            ),
            rate=args.rate,
        )
        print(f"simulated over {args.simulate} cycles: {measurement.acceptance}")
    return 0


def _cmd_route(args: argparse.Namespace) -> int:
    from dataclasses import replace

    from repro.api import NetworkSpec, RunConfig, resolve_backend
    from repro.core.exceptions import ConfigurationError, EDNError
    from repro.core.faults import parse_fault_list, parse_fault_rate, random_graph_faults
    from repro.sim.montecarlo import measure_acceptance
    from repro.sim.rng import make_rng
    from repro.workloads import parse_workload

    try:
        config = RunConfig(
            cycles=args.cycles,
            seed=args.seed,
            batch=args.batch,
            backend=args.backend,
            rel_err=args.rel_err,
            retry=args.retry,
            shard_timeout=args.shard_timeout,
            buffer_depth=args.buffer_depth,
        )
        explicit_faults = tuple(
            fault for text in (args.faults or ()) for fault in parse_fault_list(text)
        )
        fault_rate = parse_fault_rate(args.fault_rate) if args.fault_rate else None
        if config.buffer_depth is not None and config.retry is not None:
            raise ConfigurationError(
                "--buffer-depth and --retry are different latency models; "
                "pick one"
            )
    except EDNError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.traffic:
        traffics = args.traffic
    else:
        traffics = ["uniform" if args.rate >= 1.0 else f"uniform:{args.rate:g}"]
    if config.buffer_depth is not None:
        return _route_buffered(args, config, traffics, explicit_faults, fault_rate)
    rows = []
    for text in args.topology:
        try:
            spec = NetworkSpec.parse(text, priority=args.priority)
            if explicit_faults or fault_rate is not None:
                faults = explicit_faults
                if fault_rate is not None:
                    # Each topology gets its own reproducible draw in its
                    # own wire space; the spec validates the union.
                    rate, fault_seed = fault_rate
                    faults += random_graph_faults(
                        spec.stage_graph(), rate, make_rng(fault_seed)
                    ).canonical()
                spec = replace(spec, faults=faults)
            # Resolve once, build once: the displayed backend is the
            # measured one by construction, and one router serves every
            # workload row (identical seeds -> comparable columns).
            backend = resolve_backend(spec, config.backend)
            router = backend.builder(spec)
            for traffic_text in traffics:
                workload = parse_workload(traffic_text)
                traffic = workload.build(router.n_inputs, router.n_outputs)
                measurement = measure_acceptance(router, traffic, config=config)
                interval = measurement.acceptance
                row = [
                    spec.label,
                    workload.label,
                    spec.n_inputs,
                    backend.name,
                    f"{interval.point:.6f}",
                    f"[{interval.low:.4f}, {interval.high:.4f}]",
                    measurement.cycles,
                ]
                if explicit_faults or fault_rate is not None:
                    row.insert(4, len(spec.faults))
                if config.retry is not None:
                    row += [
                        f"{measurement.attempts.point:.3f}",
                        f"{measurement.latency.point:.3f}",
                        measurement.abandoned,
                    ]
                rows.append(row)
        except EDNError as exc:
            print(f"error: {text}: {exc}", file=sys.stderr)
            return 2
    budget = (
        f"adaptive (rel-err {args.rel_err:g}, budget {args.cycles})"
        if args.rel_err is not None
        else f"{args.cycles} cycles"
    )
    headers = ["topology", "traffic", "inputs", "backend", "PA", "95% CI", "cycles"]
    if explicit_faults or fault_rate is not None:
        headers.insert(4, "faults")
    title = f"Monte-Carlo acceptance, {budget}, seed {args.seed}"
    if config.retry is not None:
        headers += ["attempts", "latency", "abandoned"]
        title += f", retry {config.retry.label}"
    print(format_table(headers, rows, title=title))
    if args.cache_stats:
        print()
        print(_plan_cache_table())
    return 0


def _route_buffered(args, config, traffics, explicit_faults, fault_rate) -> int:
    """The buffered branch of ``repro route`` (``--buffer-depth``).

    Cells go through :func:`~repro.api.jobs.measure_cell` — the same
    single definition the service workers and ``ParallelSweep`` execute —
    so a CLI row, a served cell, and an inline sweep cell are bit-identical
    by construction.
    """
    from dataclasses import replace

    from repro.api import NetworkSpec
    from repro.api.jobs import SweepCell, measure_cell
    from repro.core.exceptions import EDNError
    from repro.core.faults import random_graph_faults
    from repro.sim.rng import make_rng
    from repro.workloads import parse_workload

    faulted = bool(explicit_faults) or fault_rate is not None
    rows = []
    for text in args.topology:
        try:
            spec = NetworkSpec.parse(text, priority=args.priority)
            if faulted:
                faults = explicit_faults
                if fault_rate is not None:
                    rate, fault_seed = fault_rate
                    faults += random_graph_faults(
                        spec.stage_graph(), rate, make_rng(fault_seed)
                    ).canonical()
                spec = replace(spec, faults=faults)
            for traffic_text in traffics:
                workload = parse_workload(traffic_text)
                cell = SweepCell(spec, replace(config, traffic=workload.label))
                m = measure_cell(cell)
                row = [
                    spec.label,
                    workload.label,
                    spec.n_inputs,
                    m.depth,
                    f"{m.throughput:.6f}",
                    f"{m.mean_latency:.2f}",
                    m.latency.percentile(0.50),
                    m.latency.percentile(0.95),
                    m.latency.percentile(0.99),
                    f"{m.mean_occupancy:.3f}",
                    m.in_flight,
                ]
                if faulted:
                    row.insert(4, len(spec.faults))
                    row.append(m.dropped)
                rows.append(row)
        except EDNError as exc:
            print(f"error: {text}: {exc}", file=sys.stderr)
            return 2
    headers = [
        "topology", "traffic", "inputs", "depth", "throughput",
        "latency", "p50", "p95", "p99", "occupancy", "in-flight",
    ]
    if faulted:
        headers.insert(4, "faults")
        headers.append("dropped")
    title = (
        f"Buffered packet switching, depth {config.buffer_depth}, "
        f"{args.cycles} cycles (warmup {args.cycles // 4}), seed {args.seed}"
    )
    print(format_table(headers, rows, title=title))
    if args.cache_stats:
        print()
        print(_plan_cache_table())
    return 0


def _plan_cache_table() -> str:
    """The routing-plan cache counters as a rendered table."""
    from repro.sim.plan import plan_cache_info

    info = plan_cache_info()
    return format_table(
        ["counter", "value"],
        [[name, info[name]] for name in ("hits", "misses", "size", "maxsize")],
        title="routing-plan cache (repro.sim.plan)",
    )


def _cmd_workloads(args: argparse.Namespace) -> int:
    from repro.core.exceptions import EDNError
    from repro.sim.rng import make_rng
    from repro.workloads import parse_workload, workload_catalog

    if args.spec:
        try:
            workload = parse_workload(args.spec)
            traffic = workload.build(args.terminals, args.terminals)
            sample = traffic.generate(make_rng(0))
        except EDNError as exc:
            print(f"error: {args.spec}: {exc}", file=sys.stderr)
            return 2
        preview = ", ".join(str(d) for d in sample[:16])
        if len(sample) > 16:
            preview += ", ..."
        print(
            format_table(
                ["property", "value"],
                [
                    ["canonical spec", traffic.describe()],
                    ["model", type(traffic).__name__],
                    ["terminals", f"{traffic.n_inputs} -> {traffic.n_outputs}"],
                    ["sample cycle (seed 0)", preview],
                ],
                title=f"workload {workload.label}",
            )
        )
        return 0
    rows = [
        [
            entry.name + (f" ({', '.join(entry.aliases)})" if entry.aliases else ""),
            entry.syntax,
            entry.summary,
        ]
        for entry in workload_catalog()
    ]
    print(
        format_table(
            ["workload", "spec syntax", "description"],
            rows,
            title="Registered traffic models (`--traffic SPEC`, RunConfig(traffic=...))",
        )
    )
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments.registry import EXPERIMENTS, run_experiment

    if args.list:
        for experiment_id in sorted(EXPERIMENTS):
            print(experiment_id)
        return 0
    unknown = [i for i in args.ids if i not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment id(s): {unknown}; try --list", file=sys.stderr)
        return 2
    ids = args.ids or sorted(EXPERIMENTS)
    if args.json:
        # A single JSON array has to buffer; the streaming modes below
        # keep the historical report-as-it-completes behavior.
        import json

        results = [
            run_experiment(
                experiment_id,
                jobs=args.jobs,
                batch=args.batch,
                traffic=args.traffic,
                rel_err=args.rel_err,
                shard_timeout=args.shard_timeout,
                service=args.service,
            )
            for experiment_id in ids
        ]
        print(json.dumps([result.to_dict() for result in results], indent=2))
    elif args.csv:
        for experiment_id in ids:
            result = run_experiment(
                experiment_id,
                jobs=args.jobs,
                batch=args.batch,
                traffic=args.traffic,
                rel_err=args.rel_err,
                shard_timeout=args.shard_timeout,
                service=args.service,
            )
            if result.series:
                print(f"# {result.experiment_id}: series")
                print(result.series_csv(), end="")
            for name in result.tables:
                print(f"# {result.experiment_id}: table: {name}")
                print(result.table_csv(name), end="")
    else:
        from repro.experiments.registry import main as run_all

        run_all(
            args.ids or None,
            jobs=args.jobs,
            batch=args.batch,
            traffic=args.traffic,
            rel_err=args.rel_err,
            shard_timeout=args.shard_timeout,
            service=args.service,
        )
    return 0


def _cmd_maspar(args: argparse.Namespace) -> int:
    from repro.experiments.sec5_raedn import run, run_simulation

    print(run().render())
    print()
    print(run_simulation(runs=args.runs, seed=42, drain_batch=args.batch).render())
    return 0


def _cmd_mimd(args: argparse.Namespace) -> int:
    from repro.mimd.markov import edn_resubmission

    params = EDNParams(args.a, args.b, args.c, args.l)
    solution = edn_resubmission(params, args.rate)
    print(
        format_table(
            ["quantity", "value"],
            [
                ["PA (rejects ignored)", acceptance_probability(params, args.rate)],
                ["PA' (resubmitted)", solution.pa_resubmit],
                ["effective rate r'", solution.effective_rate],
                ["q_active (efficiency)", solution.q_active],
                ["q_waiting", solution.q_waiting],
                ["bandwidth/input/cycle", solution.bandwidth_per_input],
            ],
            title=f"{params} at r = {args.rate:g} (Eqs. 7-11)",
        )
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve.protocol import DEFAULT_ADDRESS
    from repro.serve.server import serve_forever

    address = args.address if args.address is not None else DEFAULT_ADDRESS

    def _announce(server) -> None:
        print(
            f"repro serve: listening on {server.bound_address} "
            f"({server.workers} workers, cache {server.cache.maxsize} cells"
            + (
                f", shard timeout {server.shard_timeout:g}s"
                if server.shard_timeout is not None
                else ""
            )
            + ")",
            flush=True,
        )

    kwargs = {}
    if args.cache_size is not None:
        kwargs["cache_size"] = args.cache_size
    try:
        asyncio.run(
            serve_forever(
                address,
                workers=args.workers,
                shard_timeout=args.shard_timeout,
                max_poison_attempts=args.max_poison_attempts,
                drain_timeout=args.drain_timeout,
                ready=_announce,
                **kwargs,
            )
        )
    except KeyboardInterrupt:
        print("repro serve: stopped", file=sys.stderr)
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    import json
    import tempfile

    from repro.serve.chaos import ChaosScenario, run_scenario, smoke_cells, smoke_scenario

    if args.scenario is not None:
        with open(args.scenario) as handle:
            scenario = ChaosScenario.from_payload(json.load(handle))
        if args.seed:
            scenario = dataclasses.replace(scenario, seed=args.seed)
    else:
        scenario = smoke_scenario(seed=args.seed)
    cells = smoke_cells()
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as chaos_dir:
        report = run_scenario(scenario, cells, chaos_dir)
    payload = report.to_payload()
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(
            f"chaos scenario {report.scenario!r}: "
            f"{report.measured}/{report.total_cells} cells measured "
            f"byte-identically, {len(report.quarantined)} quarantined, "
            f"{report.reconnects} reconnect(s), "
            f"{report.resubmissions} resubmission(s), "
            f"{report.pool_rebuilds} pool rebuild(s)"
        )
        if report.violations:
            for violation in report.violations:
                print(f"  VIOLATION: {violation}")
        else:
            print("  all robustness invariants held")
    return 0 if report.ok else 1


def _build_submit_cells(args: argparse.Namespace):
    """The (cell, labels) grid `repro submit` sends — seeded like a sweep.

    One cell per (topology, traffic) pair; each gets the positional child
    of the master seed (the :func:`~repro.sim.rng.spawn_keys` convention),
    so a resubmission — or the same grid run inline — reproduces the
    numbers bit for bit.
    """
    from repro.api import NetworkSpec, RunConfig
    from repro.api.jobs import SweepCell
    from repro.sim.rng import spawn_keys
    from repro.workloads import parse_workload

    traffics = args.traffic or ["uniform"]
    pairs = [
        (NetworkSpec.parse(text), parse_workload(traffic_text))
        for text in args.topology
        for traffic_text in traffics
    ]
    cells = [
        SweepCell(
            spec=spec,
            config=RunConfig(
                cycles=args.cycles,
                seed=key,
                batch=args.batch,
                backend=args.backend,
                rel_err=args.rel_err,
                traffic=workload.label,
            ),
        )
        for (spec, workload), key in zip(pairs, spawn_keys(args.seed, len(pairs)))
    ]
    labels = [(spec.label, workload.label) for spec, workload in pairs]
    return cells, labels


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.core.exceptions import EDNError
    from repro.serve.client import ServiceClient, ServiceError
    from repro.serve.protocol import DEFAULT_ADDRESS

    address = args.address if args.address is not None else DEFAULT_ADDRESS
    try:
        cells, labels = _build_submit_cells(args)
    except EDNError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    key_to_label = {cell.key(): label for cell, label in zip(cells, labels)}

    def _print_partial(message: dict) -> None:
        topology, traffic = key_to_label.get(message["key"], ("?", "?"))
        point, low, high = message["acceptance"]
        print(
            f"partial: {topology} x {traffic}: PA={point:.6f} "
            f"[{low:.4f}, {high:.4f}] after {message['cycles']} cycles",
            flush=True,
        )

    try:
        with ServiceClient(address) as client:
            results = client.submit(
                cells, on_partial=_print_partial if args.partials else None
            )
    except (ServiceError, OSError) as exc:
        print(f"error: service at {address}: {exc}", file=sys.stderr)
        return 1

    rows = []
    for (topology, traffic), cell, result in zip(labels, cells, results):
        interval = result.measurement.acceptance
        rows.append([
            topology,
            traffic,
            cell.spec.n_inputs,
            f"{interval.point:.6f}",
            f"[{interval.low:.4f}, {interval.high:.4f}]",
            result.measurement.cycles,
            "hit" if result.cached else f"pid {result.worker}",
        ])
    budget = (
        f"adaptive (rel-err {args.rel_err:g}, budget {args.cycles})"
        if args.rel_err is not None
        else f"{args.cycles} cycles"
    )
    print(
        format_table(
            ["topology", "traffic", "inputs", "PA", "95% CI", "cycles", "served by"],
            rows,
            title=f"service {address}, {budget}, seed {args.seed}",
        )
    )
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    from repro.serve.client import ServiceClient, ServiceError
    from repro.serve.protocol import DEFAULT_ADDRESS

    address = args.address if args.address is not None else DEFAULT_ADDRESS
    try:
        with ServiceClient(address, timeout=10.0) as client:
            stats = client.status()
    except (ServiceError, OSError) as exc:
        print(f"error: service at {address}: {exc}", file=sys.stderr)
        return 1
    if args.json:
        import json

        print(json.dumps(stats, indent=2, sort_keys=True))
        return 0
    workers = stats["workers"]
    cells = stats["cells"]
    result_cache = stats["result_cache"]
    rows = [
        ["address", stats["address"]],
        ["uptime", f"{stats['uptime_s']:.1f}s"],
        ["workers busy/configured", f"{workers['busy']}/{workers['configured']}"],
        ["worker utilization", f"{workers['utilization']:.0%}"],
        ["queue depth", stats["queue_depth"]],
        ["pool rebuilds", workers["pool_rebuilds"]],
        ["jobs completed/submitted",
         f"{stats['jobs']['completed']}/{stats['jobs']['submitted']}"],
        ["cells completed/submitted",
         f"{cells['completed']}/{cells['submitted']}"],
        ["cells computed", cells["computed"]],
        ["cells deduped (cache/coalesce/in-job)",
         f"{cells['cached']}/{cells['coalesced']}/{cells['deduped_in_job']}"],
        ["cells resubmitted", cells["resubmitted"]],
        ["cells failed", cells["failed"]],
        ["cells quarantined",
         f"{cells['quarantined']} ({stats['quarantine']['size']} keys held)"],
        ["dedupe rate", f"{stats['dedupe_rate']:.1%}"],
        ["partials streamed", stats["partials_streamed"]],
        ["result cache hits/misses/size",
         f"{result_cache['hits']}/{result_cache['misses']}/{result_cache['size']}"],
    ]
    for pid, info in stats["plan_cache"]["per_worker"].items():
        rows.append([
            f"plan cache (worker {pid}) hits/misses/size",
            f"{info['hits']}/{info['misses']}/{info['size']}",
        ])
    print(format_table(["stat", "value"], rows, title="simulation service status"))
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    print(_plan_cache_table())
    return 0


_COMMANDS = {
    "describe": _cmd_describe,
    "pa": _cmd_pa,
    "route": _cmd_route,
    "workloads": _cmd_workloads,
    "experiment": _cmd_experiment,
    "maspar": _cmd_maspar,
    "mimd": _cmd_mimd,
    "serve": _cmd_serve,
    "chaos": _cmd_chaos,
    "submit": _cmd_submit,
    "status": _cmd_status,
    "cache": _cmd_cache,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe: normal CLI etiquette.
        sys.stderr.close()
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
