"""repro — Expanded Delta Networks for very large parallel computers.

A production-quality reproduction of Alleyne & Scherson, *Expanded Delta
Networks for Very Large Parallel Computers* (UC Irvine ICS TR #92-02, 1992).

The package is organized as:

* :mod:`repro.api` — the unified facade: :class:`NetworkSpec`/``RunConfig``
  specs, the batched :class:`Router` protocol, and the string-keyed
  backend registry (``build_router``, ``measure``) — the canonical way to
  construct and drive any network here;
* :mod:`repro.core` — the EDN itself: hyperbar switches, topology, digit
  routing, path enumeration, cost models, and the analytic acceptance
  models (Eqs. 2-5 of the paper);
* :mod:`repro.sim` — simulation substrate: discrete-event kernel, seeded
  RNG streams, statistics, a vectorized network engine and Monte-Carlo
  harnesses;
* :mod:`repro.workloads` — the pluggable traffic-model subsystem: the
  ``TrafficGenerator`` protocol, the built-in models (uniform,
  permutation, hot-spot/NUTS, bursty, mixture, trace replay, structured
  permutations), and the string-keyed registry behind ``name[:args]``
  workload specs (``"hotspot:0.1"``, ``"bitrev"``, ...);
* :mod:`repro.mimd` — Section 4: shared-memory MIMD systems with request
  resubmission (Markov model + cycle simulator);
* :mod:`repro.simd` — Section 5: restricted-access EDNs (clusters of PEs
  sharing network ports), the drain-time model, and the MasPar MP-1
  configuration;
* :mod:`repro.baselines` — Patel delta networks, full crossbars, dilated
  deltas, and omega networks for comparison;
* :mod:`repro.viz` — ASCII topology diagrams, curve plots and tables;
* :mod:`repro.experiments` — one module per paper figure, driving the
  benchmark suite.

Quickstart::

    from repro import EDNParams, EDNetwork, acceptance_probability

    params = EDNParams(a=16, b=4, c=4, l=2)       # 64 inputs -> 64 outputs
    print(params.describe())
    print("PA(1) =", acceptance_probability(params, 1.0))

    net = EDNetwork(params)
    result = net.route_destinations({s: (s * 7) % 64 for s in range(64)})
    print("delivered", result.num_delivered, "of", result.num_offered)

Or through the facade (any topology, any engine)::

    from repro.api import NetworkSpec, RunConfig, measure

    print(measure(NetworkSpec.edn(16, 4, 4, 2), RunConfig(cycles=500)).acceptance)
"""

from repro.core import (
    ConfigurationError,
    ConvergenceError,
    Crossbar,
    CycleResult,
    DestinationTag,
    EDNError,
    EDNParams,
    EDNetwork,
    EDNTopology,
    FaultSet,
    FaultyEDNetwork,
    Hyperbar,
    LabelError,
    Message,
    MessageOutcome,
    MultipassResult,
    Path,
    Permutation,
    RetirementOrder,
    RoutingError,
    ScheduleError,
    SwitchResult,
    WireFault,
    connectivity_under_faults,
    random_faults,
    route_permutation_multipass,
    acceptance_probability,
    cost_report,
    count_paths,
    crossbar_acceptance,
    crosspoint_cost,
    crosspoint_cost_closed_form,
    delta_acceptance,
    enumerate_paths,
    expected_accepted,
    expected_bandwidth,
    family_members,
    gamma,
    gamma_permutation,
    hyperbar_family,
    permutation_acceptance,
    stage_rates,
    verify_full_access,
    wire_cost,
    wire_cost_closed_form,
)

__version__ = "1.0.0"


def __getattr__(name: str):
    # Lazy: `repro.api` pulls in every engine and baseline; load it only
    # when the facade is actually used so `import repro` stays light.
    # `repro.workloads` rides the same hook for symmetry.
    if name in ("api", "workloads"):
        import importlib

        return importlib.import_module(f"repro.{name}")
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "__version__",
    "api",
    "workloads",
    "EDNParams",
    "EDNTopology",
    "EDNetwork",
    "Hyperbar",
    "Crossbar",
    "SwitchResult",
    "Message",
    "MessageOutcome",
    "CycleResult",
    "DestinationTag",
    "RetirementOrder",
    "Permutation",
    "Path",
    "gamma",
    "gamma_permutation",
    "enumerate_paths",
    "count_paths",
    "verify_full_access",
    "hyperbar_family",
    "family_members",
    "crosspoint_cost",
    "crosspoint_cost_closed_form",
    "wire_cost",
    "wire_cost_closed_form",
    "cost_report",
    "acceptance_probability",
    "permutation_acceptance",
    "expected_accepted",
    "expected_bandwidth",
    "stage_rates",
    "crossbar_acceptance",
    "delta_acceptance",
    "EDNError",
    "ConfigurationError",
    "LabelError",
    "RoutingError",
    "ScheduleError",
    "ConvergenceError",
    "WireFault",
    "FaultSet",
    "FaultyEDNetwork",
    "random_faults",
    "connectivity_under_faults",
    "MultipassResult",
    "route_permutation_multipass",
]
