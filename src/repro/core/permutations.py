"""Interconnection permutations: the gamma family and friends.

The EDN's interstage wiring is defined by the paper's Definition 3:

    *Permutation* ``gamma_{j,k}(y)`` *is defined on an n-bit label* ``y``
    *as follows: 1) fix the* ``j`` *least significant bits of the label;
    2) left cyclic shift by* ``k`` *the remaining* ``n - j`` *bits.*

Special cases called out by the paper:

* ``gamma_{0,1}`` is the perfect shuffle of ``2^n`` labels (Lawrie's omega
  wiring);
* ``gamma_{j,log2(q)}`` restricted to ``j = 0`` is Patel's *q-shuffle*;
* ``gamma_{j,0}`` is the identity.

This module implements the gamma family as pure functions on integers and as
materialized :class:`Permutation` objects supporting composition, inversion,
and application to sequences — the latter is what Corollary 2's output
"fix-up" permutation (Figure 6) needs.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.core.exceptions import ConfigurationError, LabelError
from repro.core.labels import ilog2, is_power_of_two, rotate_left, rotate_right

__all__ = [
    "gamma",
    "gamma_inverse",
    "perfect_shuffle",
    "q_shuffle",
    "Permutation",
    "gamma_permutation",
    "identity_permutation",
]


def gamma(y: int, n_bits: int, j: int, k: int) -> int:
    """Apply ``gamma_{j,k}`` to the ``n_bits``-bit label ``y``.

    The ``j`` least significant bits of ``y`` stay in place; the upper
    ``n_bits - j`` bits are rotated left by ``k`` (their top ``k`` bits wrap
    to the bottom of the upper field).

    >>> gamma(0b101101, 6, 2, 2) == 0b111001  # upper 1011 -> 1110, low bits kept
    True
    """
    if j < 0 or j > n_bits:
        raise ConfigurationError(f"j must lie in [0, n_bits], got j={j}, n_bits={n_bits}")
    if not 0 <= y < (1 << n_bits):
        raise LabelError(f"label {y} does not fit in {n_bits} bits")
    upper_width = n_bits - j
    if upper_width == 0:
        return y
    low = y & ((1 << j) - 1)
    upper = y >> j
    return (rotate_left(upper, upper_width, k) << j) | low


def gamma_inverse(z: int, n_bits: int, j: int, k: int) -> int:
    """Apply the inverse of ``gamma_{j,k}`` (a right rotation of the upper field)."""
    if j < 0 or j > n_bits:
        raise ConfigurationError(f"j must lie in [0, n_bits], got j={j}, n_bits={n_bits}")
    if not 0 <= z < (1 << n_bits):
        raise LabelError(f"label {z} does not fit in {n_bits} bits")
    upper_width = n_bits - j
    if upper_width == 0:
        return z
    low = z & ((1 << j) - 1)
    upper = z >> j
    return (rotate_right(upper, upper_width, k) << j) | low


def perfect_shuffle(y: int, n_labels: int) -> int:
    """The perfect shuffle of ``n_labels`` labels: ``gamma_{0,1}``.

    Equivalent to the card-shuffle map ``y -> (2y + floor(2y / n)) mod n``
    for power-of-two ``n``; implemented as a one-bit left rotation.
    """
    return gamma(y, ilog2(n_labels), 0, 1)


def q_shuffle(y: int, n_labels: int, q: int) -> int:
    """Patel's q-shuffle of ``n_labels`` labels: ``gamma_{0, log2(q)}``.

    For ``n = q * r`` the q-shuffle is classically written
    ``S(y) = (q*y + floor(y / r)) mod n``; for power-of-two ``q`` and ``n``
    this is a ``log2(q)``-bit left rotation, which is the form the EDN
    wiring uses.
    """
    if not is_power_of_two(q):
        raise ConfigurationError(f"q must be a power of two, got {q}")
    return gamma(y, ilog2(n_labels), 0, ilog2(q))


class Permutation:
    """An explicit permutation of ``{0, 1, ..., n-1}``.

    The mapping is stored as a tuple ``m`` with ``m[i]`` the image of ``i``.
    Instances are immutable.  Supports application (callable and on
    sequences), composition (``p @ q`` applies ``q`` first, then ``p``),
    inversion, and equality.

    >>> p = Permutation([2, 0, 1])
    >>> p(0), p(1), p(2)
    (2, 0, 1)
    >>> (p.inverse() @ p).is_identity()
    True
    """

    __slots__ = ("_map",)

    def __init__(self, mapping: Iterable[int]):
        mapping = tuple(int(v) for v in mapping)
        n = len(mapping)
        seen = [False] * n
        for v in mapping:
            if not 0 <= v < n or seen[v]:
                raise ConfigurationError(f"not a permutation of 0..{n - 1}: {mapping}")
            seen[v] = True
        self._map = mapping

    @classmethod
    def identity(cls, n: int) -> "Permutation":
        return cls(range(n))

    @classmethod
    def from_function(cls, func, n: int) -> "Permutation":
        """Materialize ``func`` over the domain ``0..n-1``."""
        return cls(func(i) for i in range(n))

    @property
    def size(self) -> int:
        return len(self._map)

    @property
    def mapping(self) -> tuple[int, ...]:
        return self._map

    def __call__(self, i: int) -> int:
        return self._map[i]

    def apply_to(self, items: Sequence) -> list:
        """Permute a sequence: output slot ``self(i)`` receives ``items[i]``.

        This matches physical wiring semantics: a message on wire ``i``
        before the permutation appears on wire ``self(i)`` after it.
        """
        if len(items) != len(self._map):
            raise LabelError(
                f"sequence of length {len(items)} does not match permutation size {len(self._map)}"
            )
        out = [None] * len(self._map)
        for i, item in enumerate(items):
            out[self._map[i]] = item
        return out

    def inverse(self) -> "Permutation":
        inv = [0] * len(self._map)
        for i, v in enumerate(self._map):
            inv[v] = i
        return Permutation(inv)

    def __matmul__(self, other: "Permutation") -> "Permutation":
        """Composition ``(self @ other)(i) == self(other(i))``."""
        if not isinstance(other, Permutation):
            return NotImplemented
        if other.size != self.size:
            raise ConfigurationError("cannot compose permutations of different sizes")
        return Permutation(self._map[other._map[i]] for i in range(self.size))

    def is_identity(self) -> bool:
        return all(v == i for i, v in enumerate(self._map))

    def fixed_points(self) -> list[int]:
        return [i for i, v in enumerate(self._map) if v == i]

    def cycles(self) -> list[tuple[int, ...]]:
        """Cycle decomposition (cycles of length >= 2, each starting at its minimum)."""
        seen = [False] * self.size
        cycles = []
        for start in range(self.size):
            if seen[start]:
                continue
            cycle = [start]
            seen[start] = True
            nxt = self._map[start]
            while nxt != start:
                cycle.append(nxt)
                seen[nxt] = True
                nxt = self._map[nxt]
            if len(cycle) > 1:
                cycles.append(tuple(cycle))
        return cycles

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Permutation):
            return self._map == other._map
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._map)

    def __len__(self) -> int:
        return len(self._map)

    def __repr__(self) -> str:
        if self.size <= 16:
            return f"Permutation({list(self._map)!r})"
        return f"Permutation(<{self.size} elements>)"


def gamma_permutation(n_labels: int, j: int, k: int) -> Permutation:
    """Materialize ``gamma_{j,k}`` over ``n_labels`` (a power of two) labels."""
    n_bits = ilog2(n_labels)
    return Permutation(gamma(y, n_bits, j, k) for y in range(n_labels))


def identity_permutation(n_labels: int) -> Permutation:
    """The identity permutation (``gamma_{j,0}`` for any ``j``)."""
    return Permutation.identity(n_labels)
