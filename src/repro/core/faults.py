"""Fault injection and fault-tolerant routing.

The paper's introduction situates EDNs among fault-tolerant multistage
designs (the extra-stage cube, reference [1]) and Theorem 2's ``c^l``
multipath is the mechanism: a message needs *one* live wire per bucket
along its path, so an ``EDN(a,b,c,l)`` tolerates up to ``c - 1`` dead
wires in every bucket it traverses, where the ``c = 1`` delta dies with
any single fault on its unique path.  This module makes that concrete:

* :class:`FaultSet` — a set of dead *output wires* (stage, switch, local
  wire).  Wire faults subsume the interesting switch-level faults: a dead
  hyperbar is all its output wires dead; a dead interstage link is the
  wire feeding it dead.
* :class:`FaultyEDNetwork` — the reference engine's semantics with dead
  wires masked out of their buckets (an effective per-bucket capacity
  reduction, non-uniform across the network).
* :func:`connectivity_under_faults` — exhaustively checks which
  source/destination pairs remain connected (Theorem 1 under damage).
* :func:`random_faults` / :func:`random_graph_faults` — i.i.d. wire
  failures for injection studies, on EDN parameters or on any
  :class:`~repro.sim.stagegraph.StageGraph`.
* :func:`parse_fault_list` / :func:`parse_fault_rate` — the CLI's fault
  spec grammar (``STAGE:SWITCH:WIRE,...`` and ``P[@SEED]``).

The same ``(stage, switch, local_wire)`` coordinates address every
stage-graph topology (delta, omega, dilated delta): stage ``i``
(1-indexed) is graph column ``i``, and ``local_wire`` indexes the
switch's ``radix * capacity`` output bucket wires.  The compiled engines
lower a fault set into per-stage dead masks on the routing plan (see
:class:`~repro.sim.plan.StagePlan`); the ``ablation_faults`` and
``degradation`` experiments measure delivered traffic and pair
connectivity as the wire-failure rate grows.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Iterator
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.core.config import EDNParams
from repro.core.exceptions import ConfigurationError, LabelError
from repro.core.network import CycleResult, Message, MessageOutcome
from repro.core.tags import DestinationTag, RetirementOrder
from repro.core.topology import EDNTopology

if TYPE_CHECKING:  # stage graphs live a layer up; annotations only
    from repro.sim.stagegraph import StageGraph

__all__ = [
    "WireFault",
    "FaultSet",
    "random_faults",
    "random_graph_faults",
    "parse_fault_list",
    "parse_fault_rate",
    "FaultyEDNetwork",
    "connectivity_under_faults",
]


@dataclass(frozen=True, order=True)
class WireFault:
    """A dead output wire: ``stage`` (1-indexed; ``l + 1`` = crossbar column),
    ``switch`` within the stage, ``local_wire`` within the switch."""

    stage: int
    switch: int
    local_wire: int


class FaultSet:
    """An immutable collection of wire faults with fast per-switch lookup."""

    def __init__(self, faults: Iterable[WireFault] = ()):
        self._faults = frozenset(faults)
        by_switch: dict[tuple[int, int], set[int]] = {}
        for fault in self._faults:
            by_switch.setdefault((fault.stage, fault.switch), set()).add(fault.local_wire)
        self._by_switch = {key: frozenset(wires) for key, wires in by_switch.items()}

    @classmethod
    def none(cls) -> "FaultSet":
        return cls()

    def validate(self, params: EDNParams) -> None:
        """Raise unless every fault names a real wire of ``params``."""
        for fault in self._faults:
            if not 1 <= fault.stage <= params.l + 1:
                raise ConfigurationError(f"{fault} names stage outside 1..{params.l + 1}")
            if fault.stage <= params.l:
                switches = params.hyperbars_in_stage(fault.stage)
                wires = params.b * params.c
            else:
                switches = params.num_crossbars
                wires = params.c
            if not 0 <= fault.switch < switches:
                raise ConfigurationError(f"{fault} names switch outside 0..{switches - 1}")
            if not 0 <= fault.local_wire < wires:
                raise ConfigurationError(f"{fault} names wire outside 0..{wires - 1}")

    def validate_graph(self, graph: "StageGraph") -> None:
        """Raise unless every fault names a real wire of ``graph``.

        Stage-graph coordinates: ``stage`` is the 1-indexed graph column,
        ``switch`` the column-local switch, ``local_wire`` an index into
        the switch's ``radix * capacity`` output bucket wires.  On an
        EDN's graph these coincide exactly with :meth:`validate`'s
        parameter-space coordinates.
        """
        widths = graph.stage_widths
        for fault in self._faults:
            if not 1 <= fault.stage <= graph.num_stages:
                raise ConfigurationError(
                    f"{fault} names stage outside 1..{graph.num_stages} "
                    f"of {graph.label}"
                )
            stage = graph.stages[fault.stage - 1]
            switches = widths[fault.stage - 1] // stage.fan_in
            if not 0 <= fault.switch < switches:
                raise ConfigurationError(
                    f"{fault} names switch outside 0..{switches - 1} of {graph.label}"
                )
            if not 0 <= fault.local_wire < stage.bucket_wires:
                raise ConfigurationError(
                    f"{fault} names wire outside 0..{stage.bucket_wires - 1} "
                    f"of {graph.label}"
                )

    def canonical(self) -> tuple[WireFault, ...]:
        """The deduplicated, sorted fault tuple (cache keys, spec storage)."""
        return tuple(sorted(self._faults))

    def dead_wires(self, stage: int, switch: int) -> frozenset[int]:
        """Local output wires of ``switch`` in ``stage`` that are dead."""
        return self._by_switch.get((stage, switch), frozenset())

    def __len__(self) -> int:
        return len(self._faults)

    def __iter__(self) -> Iterator[WireFault]:
        return iter(sorted(self._faults))

    def __contains__(self, fault: WireFault) -> bool:
        return fault in self._faults

    def __repr__(self) -> str:
        return f"FaultSet({len(self._faults)} wire faults)"


def random_faults(
    params: EDNParams, failure_rate: float, rng: np.random.Generator
) -> FaultSet:
    """Fail each hyperbar output wire independently with ``failure_rate``.

    Crossbar-stage outputs are the network's terminal pins; they are left
    alive so that "connectivity" questions stay about the fabric, not about
    a destination that physically ceased to exist.
    """
    if not 0.0 <= failure_rate <= 1.0:
        raise ConfigurationError(f"failure rate must lie in [0, 1], got {failure_rate}")
    faults = []
    per_switch = params.b * params.c
    for stage in range(1, params.l + 1):
        for switch in range(params.hyperbars_in_stage(stage)):
            dead = np.flatnonzero(rng.random(per_switch) < failure_rate)
            faults.extend(WireFault(stage, switch, int(w)) for w in dead)
    return FaultSet(faults)


def random_graph_faults(
    graph: "StageGraph", failure_rate: float, rng: np.random.Generator
) -> FaultSet:
    """Fail each interior output wire of ``graph`` independently.

    The generalization of :func:`random_faults` to any stage graph: every
    bucket wire of every column except the last fails with
    ``failure_rate``.  Final-column outputs are the network's terminal
    pins and stay alive, for the same reason :func:`random_faults` spares
    the crossbar outputs.  On an EDN graph the two samplers draw from
    identically shaped spaces (``l`` hyperbar columns of ``b*c`` wires).
    """
    if not 0.0 <= failure_rate <= 1.0:
        raise ConfigurationError(f"failure rate must lie in [0, 1], got {failure_rate}")
    widths = graph.stage_widths
    faults = []
    for index, stage in enumerate(graph.stages[:-1]):
        switches = widths[index] // stage.fan_in
        for switch in range(switches):
            dead = np.flatnonzero(rng.random(stage.bucket_wires) < failure_rate)
            faults.extend(WireFault(index + 1, switch, int(w)) for w in dead)
    return FaultSet(faults)


def parse_fault_list(text: str) -> tuple[WireFault, ...]:
    """Parse the CLI fault grammar: ``STAGE:SWITCH:WIRE[,STAGE:SWITCH:WIRE...]``.

    >>> parse_fault_list("1:0:3,2:5:0")
    (WireFault(stage=1, switch=0, local_wire=3), WireFault(stage=2, switch=5, local_wire=0))
    """
    faults = []
    for token in text.split(","):
        token = token.strip()
        if not token:
            continue
        parts = token.split(":")
        if len(parts) != 3:
            raise ConfigurationError(
                f"cannot parse wire fault {token!r}: expected STAGE:SWITCH:WIRE"
            )
        try:
            stage, switch, wire = (int(part) for part in parts)
        except ValueError:
            raise ConfigurationError(
                f"cannot parse wire fault {token!r}: fields must be integers"
            ) from None
        if stage < 1 or switch < 0 or wire < 0:
            raise ConfigurationError(
                f"wire fault {token!r} out of range: stage >= 1, switch/wire >= 0"
            )
        faults.append(WireFault(stage, switch, wire))
    if not faults:
        raise ConfigurationError(f"no wire faults in {text!r}")
    return tuple(sorted(set(faults)))


def parse_fault_rate(text: str) -> tuple[float, int]:
    """Parse the CLI random-fault grammar ``P[@SEED]`` -> ``(rate, seed)``.

    >>> parse_fault_rate("0.02@7")
    (0.02, 7)
    >>> parse_fault_rate("0.1")
    (0.1, 0)
    """
    rate_text, _sep, seed_text = text.partition("@")
    try:
        rate = float(rate_text)
        seed = int(seed_text) if seed_text else 0
    except ValueError:
        raise ConfigurationError(
            f"cannot parse fault rate {text!r}: expected P[@SEED] "
            f"(e.g. 0.02 or 0.02@7)"
        ) from None
    if not 0.0 <= rate <= 1.0:
        raise ConfigurationError(f"failure rate must lie in [0, 1], got {rate}")
    return rate, seed


class FaultyEDNetwork:
    """Reference-engine semantics over a damaged fabric.

    Dead output wires are masked out of their buckets, shrinking the
    effective bucket capacity at that switch; messages route exactly as in
    :class:`~repro.core.network.EDNetwork` otherwise (label priority,
    first-free among *live* wires).  A message whose bucket has no live
    wire is blocked at that stage, even alone in the network.
    """

    def __init__(
        self,
        params: EDNParams,
        faults: FaultSet,
        *,
        retirement_order: Optional[RetirementOrder] = None,
    ):
        faults.validate(params)
        self.params = params
        self.faults = faults
        self.topology = EDNTopology(params)
        if retirement_order is None:
            retirement_order = RetirementOrder.canonical(params.l)
        self.retirement_order = retirement_order

    def route_cycle(self, messages: Iterable[Message]) -> CycleResult:
        """One circuit-switched cycle over the damaged network."""
        p = self.params
        messages = list(messages)
        seen: set[int] = set()
        for msg in messages:
            if not 0 <= msg.source < p.num_inputs:
                raise LabelError(f"source {msg.source} out of range")
            if msg.source in seen:
                raise LabelError(f"two messages share source terminal {msg.source}")
            seen.add(msg.source)
            msg.tag.validate(p)

        outcomes = {id(m): MessageOutcome(message=m, delivered=False) for m in messages}
        inbound: dict[int, Message] = {m.source: m for m in messages}

        for stage in range(1, p.l + 1):
            inbound = self._hyperbar_stage(stage, inbound, outcomes)
        self._crossbar_stage(inbound, outcomes)
        return CycleResult(outcomes=[outcomes[id(m)] for m in messages], params=p)

    def route_destinations(self, destinations: dict[int, int]) -> CycleResult:
        messages = [
            Message.to_output(s, d, self.params) for s, d in sorted(destinations.items())
        ]
        return self.route_cycle(messages)

    # ------------------------------------------------------------------

    def _hyperbar_stage(
        self,
        stage: int,
        inbound: dict[int, Message],
        outcomes: dict[int, MessageOutcome],
    ) -> dict[int, Message]:
        p = self.params
        by_switch: dict[int, list[tuple[int, Message]]] = {}
        for wire, msg in inbound.items():
            switch, port = self.topology.hyperbar_input_location(stage, wire)
            by_switch.setdefault(switch, []).append((port, msg))

        outbound: dict[int, Message] = {}
        for switch, arrivals in sorted(by_switch.items()):
            dead = self.faults.dead_wires(stage, switch)
            taken: dict[int, int] = {}  # bucket -> wires granted so far
            for port, msg in sorted(arrivals):
                digit = msg.tag.digit_for_stage(stage, self.retirement_order)
                live = [
                    k for k in range(p.c) if (digit * p.c + k) not in dead
                ]
                index = taken.get(digit, 0)
                if index < len(live):
                    taken[digit] = index + 1
                    local_out = digit * p.c + live[index]
                    label = self.topology.hyperbar_output_label(stage, switch, local_out)
                    outcomes[id(msg)].path.append(label)
                    outbound[self.topology.interstage(stage, label)] = msg
                else:
                    outcomes[id(msg)].blocked_stage = stage
        return outbound

    def _crossbar_stage(
        self, inbound: dict[int, Message], outcomes: dict[int, MessageOutcome]
    ) -> None:
        p = self.params
        by_switch: dict[int, list[tuple[int, Message]]] = {}
        for wire, msg in inbound.items():
            switch, port = self.topology.crossbar_input_location(wire)
            by_switch.setdefault(switch, []).append((port, msg))
        for switch, arrivals in sorted(by_switch.items()):
            dead = self.faults.dead_wires(p.l + 1, switch)
            granted: set[int] = set()
            for port, msg in sorted(arrivals):
                x = msg.tag.x
                record = outcomes[id(msg)]
                if x in granted or x in dead:
                    record.blocked_stage = p.l + 1
                    continue
                granted.add(x)
                terminal = self.topology.crossbar_output_terminal(switch, x)
                record.path.append(terminal)
                record.delivered = True
                record.output = terminal


def connectivity_under_faults(params: EDNParams, faults: FaultSet) -> float:
    """Fraction of (source, destination) pairs still connected.

    A pair is connected when a lone message routes successfully — i.e. at
    least one of its ``c^l`` paths survives the damage.  Exhaustive; use on
    small networks.
    """
    network = FaultyEDNetwork(params, faults)
    connected = 0
    total = params.num_inputs * params.num_outputs
    for source in range(params.num_inputs):
        for dest in range(params.num_outputs):
            tag = DestinationTag.from_output(dest, params)
            result = network.route_cycle([Message(source=source, tag=tag)])
            if result.outcomes[0].delivered:
                connected += 1
    return connected / total
