"""The hyperbar switch ``H(a -> b x c)`` (paper, Definition 1).

A hyperbar connects ``a`` inputs to ``b * c`` outputs organized as ``b``
*output buckets* of ``c`` wires each.  Each input supplies a base-``b``
control digit naming the bucket it wants; if more than ``c`` inputs request
one bucket, exactly ``c`` are accepted and the rest are *rejected* (the
paper's circuit-switched model has no buffering).  ``H(a -> b x 1)`` is an
ordinary ``a x b`` crossbar.

The paper resolves contention by input label ("assuming that inputs are
prioritized according to their input label", Figure 2); we implement that
discipline as the default and a random discipline as an ablation — the
analytic acceptance model (Section 3.2) is independent of the choice, which
benchmark ``ablation_priority`` confirms.

Output wires within a bucket are interchangeable ("It does not matter on
which of the c wires of the output bucket the message is placed",
Section 2), which is exactly the multipath freedom counted by Theorem 2.
Two wire-assignment policies are provided: ``first_free`` (deterministic)
and ``random``; both are work-conserving, so acceptance statistics are
identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence
from typing import Optional

import numpy as np

from repro.core.exceptions import ConfigurationError, LabelError
from repro.core.labels import is_power_of_two

__all__ = ["Hyperbar", "SwitchResult", "PRIORITY_DISCIPLINES", "WIRE_POLICIES"]

PRIORITY_DISCIPLINES = ("label", "random")
WIRE_POLICIES = ("first_free", "random")


@dataclass
class SwitchResult:
    """Outcome of presenting one cycle of requests to a switch.

    Attributes
    ----------
    output_sources:
        One entry per output wire: the input index whose request was granted
        that wire, or ``None`` for an idle wire.
    accepted:
        Mapping from accepted input index to the output wire it was granted.
    rejected:
        Input indices whose requests were discarded, in ascending order.
    bucket_loads:
        Number of *requests* (not grants) addressed to each bucket.
    """

    output_sources: list[Optional[int]]
    accepted: dict[int, int]
    rejected: list[int]
    bucket_loads: list[int]

    @property
    def num_offered(self) -> int:
        return len(self.accepted) + len(self.rejected)

    @property
    def num_accepted(self) -> int:
        return len(self.accepted)

    @property
    def acceptance_ratio(self) -> float:
        """Accepted / offered for this cycle (1.0 when nothing was offered)."""
        offered = self.num_offered
        return 1.0 if offered == 0 else self.num_accepted / offered


class Hyperbar:
    """A single ``H(a -> b x c)`` hyperbar switch.

    Parameters
    ----------
    a, b, c:
        Switch shape per Definition 1.  All must be powers of two (the
        paper's simplifying assumption, retained because the interstage
        permutation is bit-defined).
    priority:
        ``"label"`` (paper default: lower input label wins contention) or
        ``"random"`` (contenders win with equal probability).
    wire_policy:
        ``"first_free"`` (winners take bucket wires in priority order) or
        ``"random"`` (winners are assigned bucket wires randomly).

    >>> switch = Hyperbar(8, 4, 2)
    >>> result = switch.route([3, 2, 3, 1, 2, 2, 0, 3])   # paper, Figure 2
    >>> sorted(result.rejected)
    [5, 7]
    """

    def __init__(
        self,
        a: int,
        b: int,
        c: int,
        *,
        priority: str = "label",
        wire_policy: str = "first_free",
    ):
        for name, value in (("a", a), ("b", b), ("c", c)):
            if not is_power_of_two(value):
                raise ConfigurationError(
                    f"hyperbar parameter {name}={value} must be a power of two"
                )
        if priority not in PRIORITY_DISCIPLINES:
            raise ConfigurationError(
                f"unknown priority discipline {priority!r}; expected one of {PRIORITY_DISCIPLINES}"
            )
        if wire_policy not in WIRE_POLICIES:
            raise ConfigurationError(
                f"unknown wire policy {wire_policy!r}; expected one of {WIRE_POLICIES}"
            )
        self.a = a
        self.b = b
        self.c = c
        self.priority = priority
        self.wire_policy = wire_policy

    @property
    def num_outputs(self) -> int:
        return self.b * self.c

    @property
    def crosspoints(self) -> int:
        """Crosspoint count ``a * b * c`` (paper, Section 3.1)."""
        return self.a * self.b * self.c

    def output_wires_of_bucket(self, bucket: int) -> range:
        """Output wire labels belonging to ``bucket``: ``[bucket*c, (bucket+1)*c)``.

        Lemma 1 places a message routed to digit ``d`` on wire ``d*c + K``
        with ``0 <= K < c``, fixing this labelling.
        """
        if not 0 <= bucket < self.b:
            raise LabelError(f"bucket {bucket} out of range 0..{self.b - 1}")
        return range(bucket * self.c, (bucket + 1) * self.c)

    def route(
        self,
        requests: Sequence[Optional[int]],
        *,
        rng: Optional[np.random.Generator] = None,
    ) -> SwitchResult:
        """Resolve one cycle of control digits into grants and rejections.

        ``requests[i]`` is the bucket digit demanded by input ``i`` or
        ``None`` for an idle input.  Returns a :class:`SwitchResult`.
        """
        if len(requests) != self.a:
            raise LabelError(
                f"expected {self.a} request slots, got {len(requests)}"
            )
        if (self.priority == "random" or self.wire_policy == "random") and rng is None:
            raise ConfigurationError(
                "randomized disciplines require an explicit numpy Generator"
            )

        contenders: list[list[int]] = [[] for _ in range(self.b)]
        for i, digit in enumerate(requests):
            if digit is None:
                continue
            if not 0 <= digit < self.b:
                raise LabelError(
                    f"input {i} requested bucket {digit}, valid range 0..{self.b - 1}"
                )
            contenders[digit].append(i)

        output_sources: list[Optional[int]] = [None] * self.num_outputs
        accepted: dict[int, int] = {}
        rejected: list[int] = []
        bucket_loads = [len(group) for group in contenders]

        for bucket, group in enumerate(contenders):
            if not group:
                continue
            if self.priority == "random" and len(group) > self.c:
                order = list(rng.permutation(len(group)))
                group = [group[i] for i in order]
            winners, losers = group[: self.c], group[self.c :]
            wires = list(self.output_wires_of_bucket(bucket))
            if self.wire_policy == "random":
                wires = [wires[i] for i in rng.permutation(self.c)]
            for winner, wire in zip(winners, wires):
                accepted[winner] = wire
                output_sources[wire] = winner
            rejected.extend(losers)

        rejected.sort()
        return SwitchResult(
            output_sources=output_sources,
            accepted=accepted,
            rejected=rejected,
            bucket_loads=bucket_loads,
        )

    def __repr__(self) -> str:
        return f"Hyperbar(H({self.a}->{self.b}x{self.c}), priority={self.priority!r})"
