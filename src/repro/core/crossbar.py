"""Crossbar switches.

Two roles in the paper:

* the final stage of every ``EDN(a, b, c, l)`` is a column of ``c x c``
  crossbars (Definition 2), each resolving the last base-``c`` digit ``x``
  of the destination tag;
* the full ``N x N`` crossbar is the upper-bound baseline of Figures 7/8.

A crossbar is exactly the degenerate hyperbar ``H(a -> b x 1)``
(Definition 1), so this class delegates contention resolution to
:class:`~repro.core.hyperbar.Hyperbar` with unit bucket capacity while
presenting crossbar-flavoured naming.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Optional

import numpy as np

from repro.core.hyperbar import Hyperbar, SwitchResult

__all__ = ["Crossbar"]


class Crossbar:
    """An ``n_inputs x n_outputs`` crossbar: at most one grant per output.

    >>> xbar = Crossbar(4, 4)
    >>> result = xbar.route([0, 0, 2, 3])
    >>> result.rejected          # input 1 lost the fight for output 0
    [1]
    """

    def __init__(
        self,
        n_inputs: int,
        n_outputs: Optional[int] = None,
        *,
        priority: str = "label",
    ):
        if n_outputs is None:
            n_outputs = n_inputs
        self._switch = Hyperbar(n_inputs, n_outputs, 1, priority=priority)

    @property
    def n_inputs(self) -> int:
        return self._switch.a

    @property
    def n_outputs(self) -> int:
        return self._switch.b

    @property
    def crosspoints(self) -> int:
        """``n_inputs * n_outputs`` crosspoint switches (paper, Section 3.1)."""
        return self._switch.crosspoints

    def route(
        self,
        requests: Sequence[Optional[int]],
        *,
        rng: Optional[np.random.Generator] = None,
    ) -> SwitchResult:
        """Resolve one cycle of output requests; see :class:`SwitchResult`."""
        return self._switch.route(requests, rng=rng)

    def __repr__(self) -> str:
        return f"Crossbar({self.n_inputs}x{self.n_outputs})"
