"""Core EDN machinery: switches, topology, routing, costs, and analytic models.

This subpackage implements the paper's primary contribution — the Expanded
Delta Network — end to end:

* :mod:`repro.core.labels` / :mod:`repro.core.permutations` — mixed-radix
  labels and the gamma interstage permutation family (Definition 3);
* :mod:`repro.core.hyperbar` / :mod:`repro.core.crossbar` — the switch
  models (Definition 1);
* :mod:`repro.core.config` / :mod:`repro.core.topology` — network shape and
  wiring (Definition 2, Eq. 1);
* :mod:`repro.core.tags` — destination tags and digit retirement
  (Lemma 1, Corollary 2);
* :mod:`repro.core.network` — the reference circuit-switched router;
* :mod:`repro.core.paths` — multipath enumeration (Theorems 1-2);
* :mod:`repro.core.cost` — crosspoint and wire costs (Eqs. 2-3);
* :mod:`repro.core.analysis` — acceptance-probability models (Eqs. 4-5).
"""

from repro.core.analysis import (
    acceptance_probability,
    crossbar_acceptance,
    delta_acceptance,
    expected_accepted,
    expected_bandwidth,
    permutation_acceptance,
    stage_rates,
)
from repro.core.config import EDNParams, family_members, hyperbar_family
from repro.core.cost import (
    cost_report,
    crosspoint_cost,
    crosspoint_cost_closed_form,
    wire_cost,
    wire_cost_closed_form,
)
from repro.core.crossbar import Crossbar
from repro.core.faults import (
    FaultSet,
    FaultyEDNetwork,
    WireFault,
    connectivity_under_faults,
    random_faults,
)
from repro.core.multipass import MultipassResult, route_permutation_multipass
from repro.core.exceptions import (
    ConfigurationError,
    ConvergenceError,
    EDNError,
    LabelError,
    RoutingError,
    ScheduleError,
)
from repro.core.hyperbar import Hyperbar, SwitchResult
from repro.core.network import CycleResult, EDNetwork, Message, MessageOutcome
from repro.core.paths import Path, count_paths, enumerate_paths, verify_full_access
from repro.core.permutations import Permutation, gamma, gamma_permutation
from repro.core.tags import DestinationTag, RetirementOrder
from repro.core.topology import EDNTopology

__all__ = [
    # configuration & structure
    "EDNParams",
    "EDNTopology",
    "hyperbar_family",
    "family_members",
    # switches
    "Hyperbar",
    "Crossbar",
    "SwitchResult",
    # routing
    "EDNetwork",
    "Message",
    "MessageOutcome",
    "CycleResult",
    "DestinationTag",
    "RetirementOrder",
    # permutations & paths
    "Permutation",
    "gamma",
    "gamma_permutation",
    "Path",
    "enumerate_paths",
    "count_paths",
    "verify_full_access",
    # cost
    "crosspoint_cost",
    "crosspoint_cost_closed_form",
    "wire_cost",
    "wire_cost_closed_form",
    "cost_report",
    # analysis
    "acceptance_probability",
    "permutation_acceptance",
    "expected_accepted",
    "expected_bandwidth",
    "stage_rates",
    "crossbar_acceptance",
    "delta_acceptance",
    # faults & multipass extensions
    "WireFault",
    "FaultSet",
    "FaultyEDNetwork",
    "random_faults",
    "connectivity_under_faults",
    "MultipassResult",
    "route_permutation_multipass",
    # errors
    "EDNError",
    "ConfigurationError",
    "LabelError",
    "RoutingError",
    "ScheduleError",
    "ConvergenceError",
]
