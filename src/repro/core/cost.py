"""Cost models for EDNs (paper, Section 3.1, Eqs. 2-3).

Two costs are defined:

* **crosspoint cost** ``Cs(a, b, c, l)`` — total crosspoint switches, a
  proxy for layout area.  An ``a x b`` crossbar costs ``ab``; an
  ``H(a -> b x c)`` hyperbar costs ``abc``;
* **wire cost** ``Cw(a, b, c, l)`` — total wires (inputs + every interstage
  boundary + outputs), a proxy for PC-board area / pins / backplane
  connections.

Both are provided as the stage-by-stage sums (always exact) and as the
paper's closed forms, with the geometric-series split on ``a/c = b``.  The
printed closed form of Eq. 2 for ``a/c = b`` drops a factor of ``c``
(``l b^{l+1} c`` should be ``l b^{l+1} c^2``; each of the ``l b^{l-1}``
hyperbars costs ``abc = b^2 c^2``) — the sums here are authoritative and the
test suite pins the closed forms to structural enumeration over the real
topology.
"""

from __future__ import annotations

from repro.core.config import EDNParams

__all__ = [
    "crosspoint_cost",
    "wire_cost",
    "crosspoint_cost_closed_form",
    "wire_cost_closed_form",
    "crossbar_crosspoint_cost",
    "delta_crosspoint_cost",
    "cost_report",
]


def crosspoint_cost(params: EDNParams) -> int:
    """Exact crosspoint count by summing over stages (Eq. 2's derivation).

    ``sum_{i=1..l} (a/c)^(l-i) b^(i-1) * abc  +  b^l * c^2``.
    """
    p = params
    hyperbar_cost = p.a * p.b * p.c
    total = sum(p.hyperbars_in_stage(i) for i in range(1, p.l + 1)) * hyperbar_cost
    total += p.num_crossbars * p.c * p.c
    return total


def crosspoint_cost_closed_form(params: EDNParams) -> int:
    """Eq. 2 closed form (corrected for the ``a/c = b`` branch, see module doc)."""
    p = params
    q, b = p.fan_in, p.b
    if q != b:
        series = (q**p.l - b**p.l) // (q - b)
        return series * p.a * p.b * p.c + b**p.l * p.c**2
    return p.l * b ** (p.l + 1) * p.c**2 + b**p.l * p.c**2


def wire_cost(params: EDNParams) -> int:
    """Exact wire count: inputs + interstage boundaries + outputs (Eq. 3's sum)."""
    p = params
    total = p.num_inputs + p.num_outputs
    for i in range(1, p.l + 1):
        total += p.wires_after_stage(i)
    return total


def wire_cost_closed_form(params: EDNParams) -> int:
    """Eq. 3 closed form.

    ``Cw = [((a/c)^l - b^l) / ((a/c) - b)] bc + (a/c)^l c + b^l c`` for
    ``a/c != b`` and ``(l + 2) b^l c`` otherwise.
    """
    p = params
    q, b = p.fan_in, p.b
    if q != b:
        series = (q**p.l - b**p.l) // (q - b)
        return series * b * p.c + q**p.l * p.c + b**p.l * p.c
    return (p.l + 2) * b**p.l * p.c


def crossbar_crosspoint_cost(n_inputs: int, n_outputs: int | None = None) -> int:
    """Cost of a full crossbar: ``n_inputs * n_outputs`` crosspoints."""
    if n_outputs is None:
        n_outputs = n_inputs
    return n_inputs * n_outputs


def delta_crosspoint_cost(a: int, b: int, l: int) -> int:
    """Cost of Patel's ``a^l x b^l`` delta network built from ``a x b`` crossbars.

    This is the ``c = 1`` specialization of Eq. 2 and the baseline the paper
    compares against in its conclusions.
    """
    return crosspoint_cost(EDNParams(a, b, 1, l))


def cost_report(params: EDNParams) -> dict:
    """All cost figures for one network, plus same-size baselines.

    The crossbar baseline is sized ``num_inputs x num_outputs``; the
    delta baseline is the ``c = 1`` member of the same hyperbar family with
    matching terminal counts when one exists (``EDN(a', b, 1, l)`` with
    ``a' = a/c`` has ``(a/c)^l`` inputs — fewer than the EDN — so we report
    the family delta ``EDN(bc, b, 1, l')`` scaled to at least as many
    inputs; callers wanting precise comparisons should build their own
    :class:`EDNParams`).
    """
    report = {
        "params": params,
        "crosspoints": crosspoint_cost(params),
        "crosspoints_closed_form": crosspoint_cost_closed_form(params),
        "wires": wire_cost(params),
        "wires_closed_form": wire_cost_closed_form(params),
        "crossbar_equivalent_crosspoints": crossbar_crosspoint_cost(
            params.num_inputs, params.num_outputs
        ),
    }
    report["cost_ratio_vs_crossbar"] = (
        report["crosspoints"] / report["crossbar_equivalent_crosspoints"]
    )
    return report
