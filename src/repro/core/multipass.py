"""Multi-pass permutation routing over a bare EDN.

Section 5 drains permutations from *clusters*; this module answers the
simpler question underneath it: how many circuit-switched passes does the
bare network need to deliver a full permutation when blocked messages
simply retry next pass?  (The SIMD literature's standard figure of merit —
"route an arbitrary permutation in a reasonable time".)

The expected pass count follows the same drain recursion as Section 5 with
``q = 1``: pass ``j`` delivers a ``PAp(r_j)``-ish fraction of the
survivors.  The function below measures it exactly by simulation, and the
``perm_pa`` benchmark family uses it to compare retirement orders and
capacities on structured permutations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.exceptions import ConfigurationError, RoutingError
from repro.sim.vectorized import VectorizedEDN

__all__ = ["MultipassResult", "route_permutation_multipass"]


@dataclass
class MultipassResult:
    """Outcome of draining one permutation through repeated passes.

    ``delivered_per_pass[k]`` counts first-time deliveries in pass ``k``;
    passes continue until every message has been delivered once.
    """

    passes: int
    delivered_per_pass: list[int]

    @property
    def total(self) -> int:
        return sum(self.delivered_per_pass)


def route_permutation_multipass(
    network: VectorizedEDN,
    permutation: np.ndarray,
    *,
    max_passes: int = 10_000,
    rng: np.random.Generator | None = None,
) -> MultipassResult:
    """Deliver every message of ``permutation``, one network pass at a time.

    Each pass offers all still-undelivered messages from their sources;
    delivered ones retire.  Deterministic under label priority (no ``rng``
    needed); pass one when the network uses a random discipline.
    """
    n = network.n_inputs
    permutation = np.asarray(permutation, dtype=np.int64)
    if sorted(permutation.tolist()) != list(range(network.n_outputs)) or n != len(
        permutation
    ):
        raise ConfigurationError("input must be a full permutation of the outputs")

    pending = np.ones(n, dtype=bool)
    delivered_per_pass: list[int] = []
    for _ in range(max_passes):
        if not pending.any():
            break
        demands = np.where(pending, permutation, -1)
        result = network.route(demands, rng)
        newly = (result.blocked_stage == 0) & pending
        pending[newly] = False
        delivered_per_pass.append(int(newly.sum()))
        if delivered_per_pass[-1] == 0 and pending.any():
            # Unreachable for valid input: every contended bucket grants at
            # least one request, so each pass delivers >= 1 message.
            raise RoutingError("pass delivered nothing - routing invariant violated")
    else:
        raise ConfigurationError(f"permutation not drained within {max_passes} passes")

    return MultipassResult(passes=len(delivered_per_pass), delivered_per_pass=delivered_per_pass)
