"""Path enumeration and connectivity verification (Lemma 1, Theorems 1-2).

Theorem 2: an ``EDN(a, b, c, l)`` offers exactly ``c^l`` distinct paths
between any input/output pair — at every hyperbar stage the message may ride
any of the ``c`` wires of its destination bucket.  This module walks the
topology to enumerate those paths explicitly, which the test suite uses to
confirm both the count and that *every* enumerated path terminates at the
tag's destination (a much stronger check of the wiring than routing alone,
since the router only ever exercises the first-free wire).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterator

from repro.core.config import EDNParams
from repro.core.exceptions import LabelError
from repro.core.tags import DestinationTag, RetirementOrder
from repro.core.topology import EDNTopology

__all__ = ["Path", "enumerate_paths", "count_paths", "verify_full_access"]


@dataclass(frozen=True)
class Path:
    """One complete circuit through the network.

    ``stage_outputs[i]`` is the global wire label occupied at the output of
    stage ``i + 1``; the final entry is the network output terminal.
    """

    source: int
    stage_outputs: tuple[int, ...]

    @property
    def destination(self) -> int:
        return self.stage_outputs[-1]


def enumerate_paths(
    topology: EDNTopology,
    source: int,
    tag: DestinationTag,
    *,
    retirement_order: RetirementOrder | None = None,
) -> Iterator[Path]:
    """Yield every path from ``source`` realizable for ``tag``.

    Follows the routing algorithm of Section 2 but branches over all ``c``
    wires of each stage's destination bucket instead of picking one.
    """
    p = topology.params
    tag.validate(p)
    if not 0 <= source < p.num_inputs:
        raise LabelError(f"source {source} out of range 0..{p.num_inputs - 1}")

    def walk(stage: int, wire: int, prefix: tuple[int, ...]) -> Iterator[Path]:
        if stage <= p.l:
            switch, _port = topology.hyperbar_input_location(stage, wire)
            digit = tag.digit_for_stage(stage, retirement_order)
            base = switch * p.b * p.c + digit * p.c
            for k in range(p.c):
                out_label = base + k
                nxt = topology.interstage(stage, out_label)
                yield from walk(stage + 1, nxt, prefix + (out_label,))
        else:
            crossbar, _port = topology.crossbar_input_location(wire)
            terminal = topology.crossbar_output_terminal(crossbar, tag.x)
            yield Path(source=source, stage_outputs=prefix + (terminal,))

    yield from walk(1, source, ())


def count_paths(
    topology: EDNTopology,
    source: int,
    tag: DestinationTag,
    *,
    retirement_order: RetirementOrder | None = None,
) -> int:
    """Number of distinct paths (Theorem 2 predicts ``c^l``)."""
    return sum(1 for _ in enumerate_paths(topology, source, tag, retirement_order=retirement_order))


def verify_full_access(params: EDNParams) -> bool:
    """Check Theorem 1 exhaustively: every source reaches every output.

    Walks all ``num_inputs * num_outputs`` pairs, asserting that each
    enumerated path is unique and lands on the tag's output.  Intended for
    small networks inside tests; cost grows as
    ``inputs * outputs * c^l``.
    """
    topology = EDNTopology(params)
    for source in range(params.num_inputs):
        for output in range(params.num_outputs):
            tag = DestinationTag.from_output(output, params)
            seen: set[tuple[int, ...]] = set()
            for path in enumerate_paths(topology, source, tag):
                if path.destination != output:
                    return False
                if path.stage_outputs in seen:
                    return False
                seen.add(path.stage_outputs)
            if len(seen) != params.paths_per_pair:
                return False
    return True
