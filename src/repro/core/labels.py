"""Mixed-radix label arithmetic for wires, switches, and destination tags.

Every object in an Expanded Delta Network — input terminals, wires between
stages, switch ports, and destination addresses — is identified by an integer
label whose digit expansion in a *mixed radix* system carries structural
meaning.  For example, a destination of an ``EDN(a, b, c, l)`` is written

    ``D = d_{l-1} d_{l-2} ... d_0 x``

where each ``d_i`` is a base-``b`` digit and ``x`` is a base-``c`` digit
(paper, Section 2).  This module provides the digit/bit manipulation
primitives that the rest of the library is built on.

All radices in the paper are powers of two, which makes every digit a bit
field; helpers here work for general radices but offer fast-path bit
operations when radices are powers of two.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.exceptions import ConfigurationError, LabelError

__all__ = [
    "is_power_of_two",
    "ilog2",
    "digits_from_int",
    "int_from_digits",
    "bits_for_radices",
    "rotate_left",
    "rotate_right",
    "reverse_bits",
    "MixedRadix",
]


def is_power_of_two(n: int) -> bool:
    """Return ``True`` when ``n`` is a positive integral power of two."""
    return n > 0 and (n & (n - 1)) == 0


def ilog2(n: int) -> int:
    """Return ``log2(n)`` for a power of two ``n``; raise otherwise.

    The paper assumes ``a``, ``b``, ``c`` are all powers of two "for
    simplicity" (Section 2); the same assumption underpins the bit-level
    interstage permutation, so we enforce it loudly.
    """
    if not is_power_of_two(n):
        raise ConfigurationError(f"{n} is not a positive power of two")
    return n.bit_length() - 1


def digits_from_int(value: int, radices: Sequence[int]) -> tuple[int, ...]:
    """Expand ``value`` into mixed-radix digits, most significant first.

    ``radices`` lists the radix of each digit position, most significant
    first, mirroring how the paper writes ``D = d_{l-1} ... d_0 x`` (the
    ``x`` digit is least significant).

    >>> digits_from_int(27, (4, 4, 2))   # 27 = 3*8 + 1*2 + 1
    (3, 1, 1)
    """
    if value < 0:
        raise LabelError(f"label must be non-negative, got {value}")
    total = 1
    for radix in radices:
        if radix < 1:
            raise LabelError(f"radices must be >= 1, got {radix}")
        total *= radix
    if value >= total:
        raise LabelError(f"label {value} out of range for radices {tuple(radices)}")
    digits = []
    for radix in reversed(radices):
        digits.append(value % radix)
        value //= radix
    return tuple(reversed(digits))


def int_from_digits(digits: Sequence[int], radices: Sequence[int]) -> int:
    """Inverse of :func:`digits_from_int`.

    >>> int_from_digits((3, 1, 1), (4, 4, 2))
    27
    """
    if len(digits) != len(radices):
        raise LabelError(
            f"digit count {len(digits)} does not match radix count {len(radices)}"
        )
    value = 0
    for digit, radix in zip(digits, radices):
        if not 0 <= digit < radix:
            raise LabelError(f"digit {digit} out of range for radix {radix}")
        value = value * radix + digit
    return value


def bits_for_radices(radices: Sequence[int]) -> int:
    """Total bit width of a label whose digits have the given radices.

    Every radix must be a power of two.
    """
    return sum(ilog2(radix) for radix in radices)


def rotate_left(value: int, width: int, k: int) -> int:
    """Rotate the ``width``-bit string ``value`` left by ``k`` positions.

    The top ``k`` bits wrap around to the bottom.  This is the elementary
    operation inside the paper's gamma permutation (Definition 3).

    >>> rotate_left(0b1001, 4, 1)
    3
    """
    if width <= 0:
        if width == 0 and value == 0:
            return 0
        raise LabelError(f"width must be positive, got {width}")
    if not 0 <= value < (1 << width):
        raise LabelError(f"value {value} does not fit in {width} bits")
    k %= width
    if k == 0:
        return value
    mask = (1 << width) - 1
    return ((value << k) | (value >> (width - k))) & mask


def rotate_right(value: int, width: int, k: int) -> int:
    """Rotate the ``width``-bit string ``value`` right by ``k`` positions."""
    if width == 0 and value == 0:
        return 0
    return rotate_left(value, width, width - (k % width) if width else 0)


def reverse_bits(value: int, width: int) -> int:
    """Reverse the ``width``-bit string ``value``.

    Used by structured-permutation traffic (bit-reversal is the classic
    adversarial pattern for banyan-class networks).
    """
    if not 0 <= value < (1 << width):
        raise LabelError(f"value {value} does not fit in {width} bits")
    result = 0
    for _ in range(width):
        result = (result << 1) | (value & 1)
        value >>= 1
    return result


class MixedRadix:
    """A fixed mixed-radix numbering scheme.

    Wraps a tuple of radices (most significant first) and offers conversions
    between integers and digit tuples, plus digit-level editing.  Instances
    are immutable and cheap; the library creates one per tag layout.

    >>> scheme = MixedRadix((4, 4, 2))
    >>> scheme.to_digits(27)
    (3, 1, 1)
    >>> scheme.from_digits((3, 1, 1))
    27
    >>> scheme.size
    32
    """

    __slots__ = ("_radices", "_size")

    def __init__(self, radices: Sequence[int]):
        radices = tuple(int(r) for r in radices)
        if not radices:
            raise ConfigurationError("a MixedRadix scheme needs at least one digit")
        size = 1
        for radix in radices:
            if radix < 1:
                raise ConfigurationError(f"radices must be >= 1, got {radix}")
            size *= radix
        self._radices = radices
        self._size = size

    @property
    def radices(self) -> tuple[int, ...]:
        """Radix of each digit, most significant first."""
        return self._radices

    @property
    def size(self) -> int:
        """Number of representable values (the product of the radices)."""
        return self._size

    @property
    def num_digits(self) -> int:
        return len(self._radices)

    def to_digits(self, value: int) -> tuple[int, ...]:
        """Digit expansion of ``value``, most significant first."""
        return digits_from_int(value, self._radices)

    def from_digits(self, digits: Sequence[int]) -> int:
        """Integer value of a digit tuple (most significant first)."""
        return int_from_digits(digits, self._radices)

    def with_digit(self, value: int, position: int, digit: int) -> int:
        """Return ``value`` with the digit at ``position`` replaced.

        ``position`` indexes digits most-significant-first, matching
        :meth:`to_digits`.
        """
        digits = list(self.to_digits(value))
        radix = self._radices[position]
        if not 0 <= digit < radix:
            raise LabelError(f"digit {digit} out of range for radix {radix}")
        digits[position] = digit
        return self.from_digits(digits)

    def digit(self, value: int, position: int) -> int:
        """Extract the digit at ``position`` (most-significant-first)."""
        return self.to_digits(value)[position]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, MixedRadix):
            return self._radices == other._radices
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._radices)

    def __repr__(self) -> str:
        return f"MixedRadix({self._radices!r})"
