"""Dynamic fault processes: failures that arrive, transients that pass.

:mod:`repro.core.faults` models a *static* damage pattern; real machines
degrade over time.  This module adds time-varying fault models over any
:class:`~repro.sim.stagegraph.StageGraph` and the driver that measures
the resulting degradation trajectory:

* :class:`TransientFaults` — per-window Bernoulli transients: every
  window redraws an i.i.d. fault pattern at a fixed rate (glitches that
  clear by themselves).
* :class:`PermanentFaults` — exponential permanent-failure arrivals: a
  live interior wire fails during a ``w``-cycle window with probability
  ``1 - exp(-failure_rate * w)``; failed wires optionally return after
  an exponential repair time.
* :func:`degradation_trajectory` — steps a fault process through
  windows, re-masks the compiled routing plan at each boundary (a plan
  cache keyed by the fault tuple makes this a table swap, not a
  recompile — see :class:`~repro.sim.plan.StagePlan`), and records the
  delivered fraction and sampled pair connectivity over time.

Both processes expose ``advance(cycles) -> FaultSet``: the fault pattern
in force for the next ``cycles``-cycle window.  Patterns change only at
window boundaries — the within-window fabric is static, which is what
lets the batched kernels route every window at full speed.

Terminal output pins never fail, matching
:func:`~repro.core.faults.random_graph_faults`: degradation stays a
statement about the fabric, not about destinations ceasing to exist.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Protocol

import numpy as np

from repro.core.exceptions import ConfigurationError
from repro.core.faults import FaultSet, WireFault, random_graph_faults

if TYPE_CHECKING:  # sim lives a layer up; annotations and lazy imports only
    from repro.sim.stagegraph import StageGraph

__all__ = [
    "FaultProcess",
    "TransientFaults",
    "PermanentFaults",
    "TrajectoryPoint",
    "degradation_trajectory",
]


class FaultProcess(Protocol):
    """The fault pattern in force for the next ``cycles``-cycle window."""

    def advance(self, cycles: int) -> FaultSet: ...


def _interior_wires(graph: "StageGraph") -> list[WireFault]:
    """Every failable wire: all bucket wires of every non-terminal column."""
    widths = graph.stage_widths
    wires = []
    for index, stage in enumerate(graph.stages[:-1]):
        for switch in range(widths[index] // stage.fan_in):
            for local in range(stage.bucket_wires):
                wires.append(WireFault(index + 1, switch, local))
    return wires


class TransientFaults:
    """Per-window Bernoulli transients: each window redraws i.i.d. faults.

    Models glitches (particle strikes, marginal timing) that persist for
    one window and clear: every :meth:`advance` call samples a fresh
    pattern at ``rate`` via :func:`~repro.core.faults.random_graph_faults`
    from its own deterministic stream, independent of window length.
    """

    def __init__(self, graph: "StageGraph", rate: float, *, seed: int = 0):
        if not 0.0 <= rate <= 1.0:
            raise ConfigurationError(f"failure rate must lie in [0, 1], got {rate}")
        self.graph = graph
        self.rate = rate
        self._rng = np.random.default_rng(np.random.SeedSequence(seed))

    def advance(self, cycles: int) -> FaultSet:
        if cycles < 1:
            raise ConfigurationError(f"window must cover >= 1 cycle, got {cycles}")
        return random_graph_faults(self.graph, self.rate, self._rng)


class PermanentFaults:
    """Exponential permanent-failure arrivals, with optional repair.

    Each live interior wire fails independently during a ``w``-cycle
    window with probability ``1 - exp(-failure_rate * w)`` (the discrete
    view of exponential inter-failure times with rate ``failure_rate``
    per cycle).  A failed wire stays dead until its repair completes:
    repair times are exponential with mean ``repair_cycles``
    (``repair_cycles = 0``, the default, means no repair — damage only
    accumulates).  Failures and repairs take effect at window
    boundaries, rounded *against* the fabric: a wire that fails at any
    point of a window is dead for that whole window, and repairs
    complete only at the first boundary past their completion time.
    """

    def __init__(
        self,
        graph: "StageGraph",
        failure_rate: float,
        *,
        repair_cycles: float = 0.0,
        seed: int = 0,
    ):
        if failure_rate < 0:
            raise ConfigurationError(
                f"failure rate must be >= 0 per cycle, got {failure_rate}"
            )
        if repair_cycles < 0:
            raise ConfigurationError(
                f"mean repair time must be >= 0 cycles, got {repair_cycles}"
            )
        self.graph = graph
        self.failure_rate = failure_rate
        self.repair_cycles = repair_cycles
        self._rng = np.random.default_rng(np.random.SeedSequence(seed))
        self._wires = _interior_wires(graph)
        self._t = 0.0
        #: wire -> repair completion time (inf = never repaired).
        self._down: dict[WireFault, float] = {}

    @property
    def time(self) -> float:
        """Cycles advanced so far."""
        return self._t

    def advance(self, cycles: int) -> FaultSet:
        if cycles < 1:
            raise ConfigurationError(f"window must cover >= 1 cycle, got {cycles}")
        end = self._t + cycles
        # Repairs complete at this boundary...
        self._down = {w: due for w, due in self._down.items() if due > self._t}
        # ...then live wires may fail during the window.
        live = [w for w in self._wires if w not in self._down]
        if live and self.failure_rate > 0:
            p_fail = 1.0 - float(np.exp(-self.failure_rate * cycles))
            draws = self._rng.random(len(live))
            for wire, u in zip(live, draws):
                if u < p_fail:
                    if self.repair_cycles > 0:
                        due = end + float(
                            self._rng.exponential(self.repair_cycles)
                        )
                    else:
                        due = float("inf")
                    self._down[wire] = due
        self._t = end
        return FaultSet(self._down)


@dataclass(frozen=True)
class TrajectoryPoint:
    """One window of a degradation trajectory.

    The last six fields are populated only by *buffered* trajectories
    (``degradation_trajectory(..., buffer_depth=)``), where queueing
    makes latency and occupancy meaningful; unbuffered trajectories
    leave them at their defaults so existing consumers are unaffected.
    """

    cycle: int  #: cycle count at the window's end
    n_faults: int  #: dead wires in force during the window
    delivered_fraction: float  #: delivered / offered over the window
    connectivity: float  #: sampled fraction of routable (src, dst) pairs
    dropped: int = 0  #: packets lost to wires that died this window
    in_flight: int = 0  #: packets queued network-wide at window end
    throughput: Optional[float] = None  #: delivered / output / cycle
    mean_latency: Optional[float] = None  #: cycles, window deliveries
    latency_p50: Optional[float] = None
    latency_p95: Optional[float] = None
    latency_p99: Optional[float] = None
    mean_occupancy: Optional[float] = None  #: packets per FIFO, cycle-end mean


def degradation_trajectory(
    graph: "StageGraph",
    process: FaultProcess,
    *,
    windows: int,
    cycles_per_window: int,
    traffic: Optional[object] = None,
    seed: int = 0,
    priority: str = "label",
    connectivity_samples: int = 256,
    buffer_depth: Optional[int] = None,
) -> list[TrajectoryPoint]:
    """Route ``windows`` windows under ``process``; record degradation.

    Each window asks the process for its fault pattern, re-masks the
    compiled routing plan (the fault-keyed plan cache turns repeat
    patterns into table reuse), routes ``cycles_per_window`` cycles of
    ``traffic`` (default full-rate uniform) on the batched kernels, and
    records the delivered fraction plus pair connectivity sampled over
    ``connectivity_samples`` random lone messages (one per batched
    cycle, so the whole probe is one kernel call).

    With ``buffer_depth`` set the run becomes *latency under
    degradation*: one persistent buffered router carries its per-wire
    FIFO state across windows, each boundary swaps the live network onto
    the new fault set via
    :meth:`~repro.sim.batched.CompiledStageRouter.apply_faults` (packets
    stranded on dying wires are dropped with accounting), and every
    point additionally reports the window's latency histogram
    (mean/p50/p95/p99), mean FIFO occupancy, throughput, drops, and
    packets in flight.
    """
    from repro.sim.batched import CompiledStageRouter
    from repro.sim.rng import make_rng
    from repro.sim.stats import LatencyStats
    from repro.workloads.models import TrafficGenerator
    from repro.workloads.registry import make_traffic

    if windows < 1:
        raise ConfigurationError(f"need >= 1 window, got {windows}")
    if traffic is None:
        traffic = "uniform"
    if not isinstance(traffic, TrafficGenerator):
        traffic = make_traffic(traffic, graph.n_inputs, graph.n_outputs)
    rng = make_rng(seed)
    points = []
    elapsed = 0
    buffered = None
    if buffer_depth is not None:
        buffered = CompiledStageRouter(
            graph, priority=priority, buffer_depth=buffer_depth
        )
    for _ in range(windows):
        faults = process.advance(cycles_per_window).canonical()
        router = CompiledStageRouter(graph, priority=priority, faults=faults)
        extras: dict = {}
        if buffered is None:
            dests = traffic.generate_batch(rng, cycles_per_window)
            counts = router.route_batch_counts(dests, rng)
            offered = int(counts.offered_per_cycle.sum())
            delivered = int(counts.delivered_per_cycle.sum())
        else:
            dropped = buffered.apply_faults(faults)
            dests = traffic.generate_batch(rng, cycles_per_window)
            offered = delivered = 0
            occupancy_total = 0.0
            latency = LatencyStats()
            for row in range(cycles_per_window):
                outcome = buffered.step(dests[row], rng)
                offered += outcome.offered
                delivered += outcome.delivered
                latency.record(outcome.latencies)
                occupancy_total += buffered.total_occupancy()
            extras = dict(
                dropped=dropped,
                in_flight=buffered.total_occupancy(),
                throughput=delivered / (cycles_per_window * graph.n_outputs),
                mean_latency=latency.mean if latency.count else None,
                latency_p50=latency.percentile(0.50) if latency.count else None,
                latency_p95=latency.percentile(0.95) if latency.count else None,
                latency_p99=latency.percentile(0.99) if latency.count else None,
                mean_occupancy=(
                    occupancy_total
                    / cycles_per_window
                    / buffered._buffers.num_queues
                ),
            )
        elapsed += cycles_per_window
        points.append(
            TrajectoryPoint(
                cycle=elapsed,
                n_faults=len(faults),
                delivered_fraction=delivered / offered if offered else 1.0,
                connectivity=_sampled_connectivity(
                    router, rng, connectivity_samples
                ),
                **extras,
            )
        )
    return points


def _sampled_connectivity(router, rng, samples: int) -> float:
    """Fraction of random (source, destination) pairs a lone message serves.

    The Monte-Carlo view of
    :func:`~repro.core.faults.connectivity_under_faults`: one lone
    message per batched cycle, so ``samples`` probes cost one kernel
    call instead of ``N^2`` routed cycles.
    """
    if samples < 1:
        return 1.0
    n, m = router.n_inputs, router.n_outputs
    sources = rng.integers(0, n, samples)
    dest = rng.integers(0, m, samples)
    dests = np.full((samples, n), -1, dtype=np.int64)
    dests[np.arange(samples), sources] = dest
    counts = router.route_batch_counts(dests)
    return float(counts.delivered_per_cycle.sum()) / samples
