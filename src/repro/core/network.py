"""Reference circuit-switched EDN routing engine.

The paper's operational model (Section 3.2): the network is circuit
switched with no internal buffering.  A *cycle* begins with every active
input presenting a destination tag; tags flow stage by stage, each hyperbar
granting at most ``c`` requests per bucket and discarding the rest; requests
surviving all ``l + 1`` stages hold a circuit and deliver their message.
Blocked requests simply vanish from the cycle (what happens to them next is
a policy of the surrounding system — Section 4 resubmits them, Section 5
retries them from the cluster queues).

This engine is the *reference* implementation: one switch object per
hyperbar/crossbar, explicit wire labels, full path recording.  It is meant
for correctness (Lemma 1 / Theorems 1-2 are tested against it) and for
networks up to a few thousand terminals.  The vectorized engine in
:mod:`repro.sim.vectorized` reproduces identical decisions with numpy for
Monte-Carlo work at scale; an integration test pins the two to each other.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable, Mapping, Sequence
from typing import Optional

import numpy as np

from repro.core.config import EDNParams
from repro.core.crossbar import Crossbar
from repro.core.exceptions import ConfigurationError, LabelError, RoutingError
from repro.core.hyperbar import Hyperbar
from repro.core.tags import DestinationTag, RetirementOrder
from repro.core.topology import EDNTopology

__all__ = ["Message", "MessageOutcome", "CycleResult", "EDNetwork"]


@dataclass(frozen=True)
class Message:
    """One routing request: a source terminal, a destination tag, a payload."""

    source: int
    tag: DestinationTag
    payload: object = None

    @classmethod
    def to_output(cls, source: int, output: int, params: EDNParams, payload: object = None) -> "Message":
        """Convenience constructor from a destination terminal number."""
        return cls(source=source, tag=DestinationTag.from_output(output, params), payload=payload)


@dataclass
class MessageOutcome:
    """What happened to one message during a cycle.

    ``blocked_stage`` is ``None`` for delivered messages, otherwise the
    1-indexed stage whose switch discarded the request (``l + 1`` means the
    final crossbar stage).  ``path`` lists the global wire label occupied at
    the output of each traversed stage (delivered messages have ``l + 1``
    entries; the last equals the output terminal).
    """

    message: Message
    delivered: bool
    output: Optional[int] = None
    blocked_stage: Optional[int] = None
    path: list[int] = field(default_factory=list)


@dataclass
class CycleResult:
    """Outcome of one network cycle over a batch of messages."""

    outcomes: list[MessageOutcome]
    params: EDNParams

    @property
    def num_offered(self) -> int:
        return len(self.outcomes)

    @property
    def delivered(self) -> list[MessageOutcome]:
        return [o for o in self.outcomes if o.delivered]

    @property
    def blocked(self) -> list[MessageOutcome]:
        return [o for o in self.outcomes if not o.delivered]

    @property
    def num_delivered(self) -> int:
        return len(self.delivered)

    @property
    def acceptance_ratio(self) -> float:
        """Delivered / offered this cycle (1.0 for an empty cycle)."""
        return 1.0 if not self.outcomes else self.num_delivered / len(self.outcomes)

    def output_map(self) -> dict[int, Message]:
        """Output terminal -> delivered message."""
        return {o.output: o.message for o in self.delivered}

    def blocked_stage_histogram(self) -> dict[int, int]:
        """Stage index -> number of messages discarded there."""
        hist: dict[int, int] = {}
        for o in self.blocked:
            hist[o.blocked_stage] = hist.get(o.blocked_stage, 0) + 1
        return dict(sorted(hist.items()))


class EDNetwork:
    """A complete, stateful-per-cycle ``EDN(a, b, c, l)`` router.

    Parameters
    ----------
    params:
        Network shape.
    priority, wire_policy:
        Contention and wire-assignment disciplines, forwarded to every
        switch (see :class:`~repro.core.hyperbar.Hyperbar`).
    retirement_order:
        The fixed order in which routing digits are consumed, canonical by
        default.  Under a non-canonical order, delivered messages land on
        the *reordered* output (Corollary 2); apply
        ``retirement_order.fixup_permutation(params)`` to the outputs to
        restore intended destinations, as Figure 6 does.

    >>> net = EDNetwork(EDNParams(16, 4, 4, 2))
    >>> result = net.route_cycle([Message.to_output(0, 27, net.params)])
    >>> result.delivered[0].output
    27
    """

    def __init__(
        self,
        params: EDNParams,
        *,
        priority: str = "label",
        wire_policy: str = "first_free",
        retirement_order: Optional[RetirementOrder] = None,
    ):
        self.params = params
        self.topology = EDNTopology(params)
        self.priority = priority
        self.wire_policy = wire_policy
        if retirement_order is None:
            retirement_order = RetirementOrder.canonical(params.l)
        elif retirement_order.l != params.l:
            raise ConfigurationError(
                f"retirement order covers {retirement_order.l} digits, network has l={params.l}"
            )
        self.retirement_order = retirement_order
        self._hyperbar = Hyperbar(
            params.a, params.b, params.c, priority=priority, wire_policy=wire_policy
        )
        self._crossbar = Crossbar(params.c, priority=priority)

    # ------------------------------------------------------------------

    def route_cycle(
        self,
        messages: Iterable[Message],
        *,
        rng: Optional[np.random.Generator] = None,
    ) -> CycleResult:
        """Run one circuit-switched cycle over ``messages``.

        Each message must originate at a distinct input terminal.  Returns a
        :class:`CycleResult` with per-message outcomes and full paths.
        """
        p = self.params
        messages = list(messages)
        seen_sources: set[int] = set()
        for msg in messages:
            if not 0 <= msg.source < p.num_inputs:
                raise LabelError(
                    f"source {msg.source} out of range 0..{p.num_inputs - 1}"
                )
            if msg.source in seen_sources:
                raise LabelError(f"two messages share source terminal {msg.source}")
            seen_sources.add(msg.source)
            msg.tag.validate(p)

        outcomes = {id(msg): MessageOutcome(message=msg, delivered=False) for msg in messages}
        # Wire occupancy entering the current stage: wire label -> message.
        inbound: dict[int, Message] = {msg.source: msg for msg in messages}

        for stage in range(1, p.l + 1):
            inbound = self._route_hyperbar_stage(stage, inbound, outcomes, rng)
        self._route_crossbar_stage(inbound, outcomes, rng)

        return CycleResult(outcomes=[outcomes[id(m)] for m in messages], params=p)

    def route_destinations(
        self,
        destinations: Mapping[int, int] | Sequence[Optional[int]],
        *,
        rng: Optional[np.random.Generator] = None,
    ) -> CycleResult:
        """Route a cycle given plain ``source -> output terminal`` demands.

        ``destinations`` may be a mapping or a dense sequence indexed by
        source with ``None`` for idle inputs.  Tags are built canonically
        from the requested outputs.
        """
        if isinstance(destinations, Mapping):
            items = sorted(destinations.items())
        else:
            items = [(s, d) for s, d in enumerate(destinations) if d is not None]
        messages = [Message.to_output(s, d, self.params) for s, d in items]
        return self.route_cycle(messages, rng=rng)

    # ------------------------------------------------------------------

    def _route_hyperbar_stage(
        self,
        stage: int,
        inbound: dict[int, Message],
        outcomes: dict[int, MessageOutcome],
        rng: Optional[np.random.Generator],
    ) -> dict[int, Message]:
        p = self.params
        # Group the live messages by the hyperbar their wire enters.
        by_switch: dict[int, list[Optional[Message]]] = {}
        for wire, msg in inbound.items():
            switch, port = self.topology.hyperbar_input_location(stage, wire)
            slots = by_switch.setdefault(switch, [None] * p.a)
            if slots[port] is not None:
                raise RoutingError(
                    f"two messages collided on stage {stage} switch {switch} port {port}"
                )
            slots[port] = msg

        outbound: dict[int, Message] = {}
        for switch, slots in sorted(by_switch.items()):
            requests = [
                None if m is None else m.tag.digit_for_stage(stage, self.retirement_order)
                for m in slots
            ]
            result = self._hyperbar.route(requests, rng=rng)
            for port, msg in enumerate(slots):
                if msg is None:
                    continue
                record = outcomes[id(msg)]
                if port in result.accepted:
                    local_out = result.accepted[port]
                    out_label = self.topology.hyperbar_output_label(stage, switch, local_out)
                    record.path.append(out_label)
                    outbound[self.topology.interstage(stage, out_label)] = msg
                else:
                    record.blocked_stage = stage
        return outbound

    def _route_crossbar_stage(
        self,
        inbound: dict[int, Message],
        outcomes: dict[int, MessageOutcome],
        rng: Optional[np.random.Generator],
    ) -> None:
        p = self.params
        by_switch: dict[int, list[Optional[Message]]] = {}
        for wire, msg in inbound.items():
            switch, port = self.topology.crossbar_input_location(wire)
            slots = by_switch.setdefault(switch, [None] * p.c)
            if slots[port] is not None:
                raise RoutingError(f"two messages collided at crossbar {switch} port {port}")
            slots[port] = msg

        for switch, slots in sorted(by_switch.items()):
            requests = [None if m is None else m.tag.x for m in slots]
            result = self._crossbar.route(requests, rng=rng)
            for port, msg in enumerate(slots):
                if msg is None:
                    continue
                record = outcomes[id(msg)]
                if port in result.accepted:
                    terminal = self.topology.crossbar_output_terminal(
                        switch, result.accepted[port]
                    )
                    record.path.append(terminal)
                    record.delivered = True
                    record.output = terminal
                else:
                    record.blocked_stage = p.l + 1

    def __repr__(self) -> str:
        return f"EDNetwork({self.params}, priority={self.priority!r})"
