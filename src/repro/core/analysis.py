"""Analytic performance model of EDNs (paper, Section 3.2, Eqs. 4-5).

The model follows Patel's classic independence approximation, generalized
to hyperbars.  Under uniform independent destinations (Theorem 3 shows the
uniformity propagates stage to stage):

* a bucket of an ``H(a -> b x c)`` hyperbar facing per-input request rate
  ``r`` sees ``n ~ Binomial(a, r/b)`` requests and grants ``min(n, c)``;
  the *expected grants per bucket* are

      ``E(r) = sum_n min(n, c) * P[n]  =  a*(r/b) - sum_{n>c} (n - c) * P[n]``;

* the per-wire rate entering the next stage is ``r' = E(r) / c``, giving
  the recursion ``r_{i+1} = E(r_i) / c`` with ``r_0 = r``;
* the final ``c x c`` crossbar delivers a request on a given output with
  probability ``r_final = 1 - (1 - r_l / c)^c``;
* the probability of acceptance is the delivered/generated ratio

      ``PA(r) = (b c / a)^l * r_final / r``            (Eq. 4).

For *permutation* traffic Lemma 2 proves the last hyperbar stage and the
crossbar stage never block, so only stages ``1 .. l-1`` attenuate:

      ``PAp(r) = (b c / a)^(l-1) * r_{l-1} / r``       (Eq. 5).

Everything here is closed-form arithmetic — no simulation — and is
validated against Monte-Carlo simulation in the test suite and the
``fig7_mc`` benchmark.
"""

from __future__ import annotations

from math import comb, expm1, log1p

from repro.core.config import EDNParams
from repro.core.exceptions import ConfigurationError

__all__ = [
    "expected_accepted",
    "bucket_load_pmf",
    "stage_rates",
    "acceptance_probability",
    "permutation_acceptance",
    "expected_bandwidth",
    "crossbar_acceptance",
    "delta_acceptance",
]


def bucket_load_pmf(a: int, b: int, r: float) -> list[float]:
    """P[n requests address one bucket], ``n = 0..a`` (binomial ``(a, r/b)``)."""
    if not 0.0 <= r <= 1.0:
        raise ConfigurationError(f"request rate must lie in [0, 1], got {r}")
    p = r / b
    q = 1.0 - p
    return [comb(a, n) * p**n * q ** (a - n) for n in range(a + 1)]


def expected_accepted(a: int, b: int, c: int, r: float) -> float:
    """``E(r)``: expected requests granted per bucket of ``H(a -> b x c)``.

    Uses the identity ``E[min(n, c)] = E[n] - E[(n - c)^+]
    = a*p - sum_{n>c} (n - c) P[n]`` with ``p = r/b``.  Unlike the naive
    ``c - sum_{n<c} (c-n) P[n]`` form, this stays exact down to
    ``r -> 0`` (where ``E ~ a*r/b`` must survive, not cancel to zero) —
    the recursion of Eq. 4 feeds on exactly those tiny rates.
    """
    if not 0.0 <= r <= 1.0:
        raise ConfigurationError(f"request rate must lie in [0, 1], got {r}")
    if c > a:
        raise ConfigurationError(f"bucket capacity c={c} cannot exceed inputs a={a}")
    p = r / b
    q = 1.0 - p
    if q == 0.0:
        # r/b == 1 (only possible when b == 1 and r == 1): all a requests hit
        # the single bucket, so exactly min(a, c) = c are granted.
        return float(c)
    # Walk the binomial pmf incrementally: P[n+1] = P[n] * (a-n)/(n+1) * p/q.
    overflow = 0.0
    pmf_n = q**a
    for n in range(a):
        if n > c:
            overflow += (n - c) * pmf_n
        pmf_n *= (a - n) / (n + 1) * (p / q)
    overflow += (a - c) * pmf_n if a > c else 0.0
    return a * p - overflow


def stage_rates(params: EDNParams, r: float, *, stages: int | None = None) -> list[float]:
    """Per-wire request rates ``[r_0, r_1, ..., r_stages]`` through the hyperbar stages.

    ``r_0 = r`` is the offered rate; ``r_i`` is the rate on each wire
    leaving hyperbar stage ``i``.  ``stages`` defaults to ``l`` (all
    hyperbar stages).
    """
    if stages is None:
        stages = params.l
    if not 0 <= stages <= params.l:
        raise ConfigurationError(f"stages must lie in 0..{params.l}, got {stages}")
    rates = [r]
    for _ in range(stages):
        rates.append(expected_accepted(params.a, params.b, params.c, rates[-1]) / params.c)
    return rates


def acceptance_probability(params: EDNParams, r: float) -> float:
    """``PA(r)`` — Eq. 4: expected fraction of generated requests delivered.

    ``PA(0)`` is defined by continuity as 1 (an infinitesimal load is never
    blocked).
    """
    if r == 0.0:
        return 1.0
    r_l = stage_rates(params, r)[-1]
    scale = (params.b * params.c / params.a) ** params.l
    if r_l >= params.c:
        return scale / r  # saturated crossbar inputs (r_l/c == 1)
    # 1 - (1 - r_l/c)^c, computed without cancellation at tiny rates.
    r_final = -expm1(params.c * log1p(-r_l / params.c))
    return scale * r_final / r


def permutation_acceptance(params: EDNParams, r: float = 1.0) -> float:
    """``PAp(r)`` — Eq. 5: acceptance when the offered requests form a (partial) permutation.

    Lemma 2 removes blocking from the last hyperbar stage and the crossbar
    stage; for ``l = 1`` the whole network is conflict-free and
    ``PAp = 1``.
    """
    if r == 0.0:
        return 1.0
    r_prev = stage_rates(params, r, stages=params.l - 1)[-1]
    scale = (params.b * params.c / params.a) ** (params.l - 1)
    return scale * r_prev / r


def expected_bandwidth(params: EDNParams, r: float) -> float:
    """Expected requests delivered per cycle: ``num_inputs * r * PA(r)``."""
    return params.num_inputs * r * acceptance_probability(params, r)


def crossbar_acceptance(n: int, r: float) -> float:
    """``PA`` of a full ``n x n`` crossbar under uniform traffic.

    Each output is requested by at least one of the ``n`` inputs with
    probability ``1 - (1 - r/n)^n``; dividing expected deliveries by
    expected requests gives ``PA = (1 - (1 - r/n)^n) / r``.  This is the
    reference curve of Figures 7-8 (``-> (1 - e^-r) / r`` as ``n`` grows).
    """
    if n < 1:
        raise ConfigurationError(f"crossbar size must be positive, got {n}")
    if r == 0.0:
        return 1.0
    if not 0.0 < r <= 1.0:
        raise ConfigurationError(f"request rate must lie in [0, 1], got {r}")
    if r == n:  # only n = 1, r = 1: log1p(-1) would blow up
        return 1.0
    # -expm1(n*log1p(-r/n)) == 1 - (1 - r/n)^n without cancellation at small r.
    return -expm1(n * log1p(-r / n)) / r


def delta_acceptance(a: int, b: int, l: int, r: float) -> float:
    """``PA`` of Patel's ``a^l x b^l`` delta network (the ``c = 1`` EDN).

    Patel's recursion: ``r_{i+1} = 1 - (1 - r_i / b)^a``.  Provided as an
    independent implementation so tests can pin
    ``acceptance_probability(EDN(a, b, 1, l), r)`` against it.
    """
    if r == 0.0:
        return 1.0
    rate = r
    for _ in range(l):
        if rate >= b:
            rate = 1.0
        else:
            rate = -expm1(a * log1p(-rate / b))  # 1 - (1 - rate/b)^a, stably
    return (b / a) ** l * rate / r
