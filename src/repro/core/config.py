"""Parameterization of Expanded Delta Networks.

An ``EDN(a, b, c, l)`` (paper, Definition 2) is an ``l + 1``-stage network:
stages ``1..l`` are ``H(a -> b x c)`` hyperbar switches and stage ``l + 1``
is a column of ``c x c`` crossbars.  This module centralizes parameter
validation and all the derived size arithmetic the paper states in
Section 2:

* the network has ``(a/c)^l * c`` inputs and ``b^l * c`` outputs;
* the output of stage ``i`` carries ``(a/c)^(l-i) * b^i * c`` wires;
* stage ``i`` contains ``(a/c)^(l-i) * b^(i-1)`` hyperbars and the final
  stage contains ``b^l`` crossbars.

It also exposes the two special cases the paper highlights (Theorem 2's
corollary cases): ``EDN(a, b, 1, 1)`` is an ``a x b`` crossbar and
``EDN(a, b, 1, l)`` is an ``a^l x b^l`` delta network, plus generators for
the switch *families* plotted in Figures 7 and 8 (all EDNs whose hyperbar
has a fixed number of input and output terminals).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterator

from repro.core.exceptions import ConfigurationError
from repro.core.labels import ilog2, is_power_of_two

__all__ = ["EDNParams", "hyperbar_family", "family_members"]


@dataclass(frozen=True)
class EDNParams:
    """Validated parameters of an ``EDN(a, b, c, l)``.

    Attributes
    ----------
    a:
        Inputs per hyperbar switch.
    b:
        Output buckets per hyperbar switch (the routing radix).
    c:
        Bucket capacity — wires per bucket, and the size of the final-stage
        crossbars.  ``c = 1`` degenerates to Patel's delta network.
    l:
        Number of hyperbar stages.  The network has ``l + 1`` stages total.
    """

    a: int
    b: int
    c: int
    l: int

    def __post_init__(self) -> None:
        for name, value in (("a", self.a), ("b", self.b), ("c", self.c)):
            if not is_power_of_two(value):
                raise ConfigurationError(
                    f"EDN parameter {name}={value} must be a positive power of two "
                    "(paper, Section 2)"
                )
        if self.l < 1:
            raise ConfigurationError(f"EDN needs at least one hyperbar stage, got l={self.l}")
        if self.c > self.a:
            raise ConfigurationError(
                f"bucket capacity c={self.c} cannot exceed hyperbar inputs a={self.a}"
            )
        if self.b < 2 and not (self.b == 1 and self.c == 1):
            # b = 1 means a single bucket: the switch performs no routing at
            # all and the destination tag has zero-width digits.  The paper
            # never instantiates it; we reject it except in the degenerate
            # 1x1 case, which is harmless.
            raise ConfigurationError("hyperbars need at least b=2 output buckets")

    # ------------------------------------------------------------------
    # Size arithmetic (paper, Section 2)
    # ------------------------------------------------------------------

    @property
    def fan_in(self) -> int:
        """``a / c``: distinct hyperbars feeding each stage-level digit."""
        return self.a // self.c

    @property
    def num_inputs(self) -> int:
        """``(a/c)^l * c`` input terminals."""
        return self.fan_in**self.l * self.c

    @property
    def num_outputs(self) -> int:
        """``b^l * c`` output terminals."""
        return self.b**self.l * self.c

    def wires_after_stage(self, i: int) -> int:
        """Wires leaving stage ``i`` (``i = 0`` means the network inputs).

        ``W_i = (a/c)^(l-i) * b^i * c`` for ``0 <= i <= l``; the crossbar
        stage preserves width so ``W_{l+1} = W_l = b^l * c``.
        """
        if not 0 <= i <= self.l + 1:
            raise ConfigurationError(f"stage index {i} out of range 0..{self.l + 1}")
        if i == self.l + 1:
            i = self.l
        return self.fan_in ** (self.l - i) * self.b**i * self.c

    def hyperbars_in_stage(self, i: int) -> int:
        """Hyperbar switches in stage ``i`` (``1 <= i <= l``)."""
        if not 1 <= i <= self.l:
            raise ConfigurationError(f"hyperbar stage index {i} out of range 1..{self.l}")
        return self.fan_in ** (self.l - i) * self.b ** (i - 1)

    @property
    def num_crossbars(self) -> int:
        """``b^l`` crossbars in the final stage."""
        return self.b**self.l

    @property
    def total_hyperbars(self) -> int:
        return sum(self.hyperbars_in_stage(i) for i in range(1, self.l + 1))

    # ------------------------------------------------------------------
    # Bit widths
    # ------------------------------------------------------------------

    @property
    def digit_bits(self) -> int:
        """Bits retired per hyperbar stage: ``log2(b)``."""
        return ilog2(self.b)

    @property
    def capacity_bits(self) -> int:
        """Bits retired at the crossbar stage: ``log2(c)``."""
        return ilog2(self.c)

    @property
    def fan_in_bits(self) -> int:
        """``log2(a/c)``: the rotation amount of the interstage gamma."""
        return ilog2(self.fan_in)

    @property
    def tag_bits(self) -> int:
        """Total destination-tag width: ``l*log2(b) + log2(c)`` bits."""
        return self.l * self.digit_bits + self.capacity_bits

    # ------------------------------------------------------------------
    # Special cases (paper, after Theorem 2)
    # ------------------------------------------------------------------

    @property
    def is_crossbar(self) -> bool:
        """``EDN(a, b, 1, 1)`` is an ``a x b`` crossbar."""
        return self.c == 1 and self.l == 1

    @property
    def is_delta(self) -> bool:
        """``EDN(a, b, 1, l)`` is an ``a^l x b^l`` delta network."""
        return self.c == 1

    @property
    def paths_per_pair(self) -> int:
        """Distinct paths between any input/output pair: ``c^l`` (Theorem 2)."""
        return self.c**self.l

    @property
    def hyperbar_io(self) -> tuple[int, int]:
        """(inputs, outputs) of the constituent hyperbar: ``(a, b*c)``."""
        return (self.a, self.b * self.c)

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"EDN({self.a},{self.b},{self.c},{self.l}): "
            f"{self.num_inputs} inputs -> {self.num_outputs} outputs, "
            f"{self.l} hyperbar stage(s) of H({self.a}->{self.b}x{self.c}) "
            f"+ {self.num_crossbars} {self.c}x{self.c} crossbar(s), "
            f"{self.paths_per_pair} path(s) per input/output pair"
        )

    def __str__(self) -> str:
        return f"EDN({self.a},{self.b},{self.c},{self.l})"


def hyperbar_family(io_size: int) -> list[tuple[int, int, int]]:
    """All ``(a, b, c)`` hyperbar shapes with ``a = b*c = io_size``.

    These are the *families* of Figures 7 and 8: "all families [of] EDNs
    generated with 8 inputs 8 outputs hyperbars" means every split of the
    8 outputs into ``b`` buckets of capacity ``c``.  ``b = 1`` (a single
    bucket, no routing) is excluded; ``c = 1`` is the delta-network member.

    >>> hyperbar_family(8)
    [(8, 2, 4), (8, 4, 2), (8, 8, 1)]
    """
    if not is_power_of_two(io_size):
        raise ConfigurationError(f"hyperbar I/O size must be a power of two, got {io_size}")
    shapes = []
    b = 2
    while b <= io_size:
        shapes.append((io_size, b, io_size // b))
        b *= 2
    return shapes


def family_members(
    a: int, b: int, c: int, *, max_inputs: int, min_stages: int = 1
) -> Iterator[EDNParams]:
    """Yield ``EDN(a, b, c, l)`` for ``l = min_stages, min_stages+1, ...``.

    Stops once the network input count would exceed ``max_inputs``.  This is
    the sweep the paper plots along the x-axis of Figures 7, 8 and 11
    (network size from one switch up to ~10^6 terminals).
    """
    l = min_stages
    while True:
        params = EDNParams(a, b, c, l)
        if params.num_inputs > max_inputs:
            return
        yield params
        l += 1
