"""Structural wiring of an ``EDN(a, b, c, l)`` (paper, Definition 2 + Eq. 1).

The network is ``l`` columns of ``H(a -> b x c)`` hyperbars followed by one
column of ``c x c`` crossbars.  Wires at every stage boundary are labelled
``0, 1, 2, ...`` top to bottom, switches likewise (paper, Section 2).

Wiring rules, as used by Lemma 1's algebra and verified in the test suite by
end-to-end routing:

* network input ``s`` feeds hyperbar ``floor(s / a)`` of stage 1 at local
  port ``s mod a`` (direct connection);
* output ``y`` of hyperbar stage ``i`` (``1 <= i < l``) connects to input
  ``gamma_{log2(c), log2(a/c)}(y)`` of stage ``i + 1`` — fix the low
  ``log2(c)`` bits, rotate the rest left by ``log2(a/c)`` (Eq. 1 /
  Definition 3);
* output ``y`` of the last hyperbar stage feeds crossbar ``floor(y / c)``
  directly: "at the l-th stage, each of the ``b^l`` buckets are sent
  directly to a ``c x c`` crossbar";
* crossbar ``k`` drives output terminals ``k*c .. k*c + c - 1``.

The class is purely structural — no routing state — so one instance can be
shared by any number of simulations.
"""

from __future__ import annotations

from repro.core.config import EDNParams
from repro.core.exceptions import ConfigurationError, LabelError
from repro.core.labels import ilog2
from repro.core.permutations import gamma, gamma_inverse

__all__ = ["EDNTopology"]


class EDNTopology:
    """Wiring arithmetic for one ``EDN(a, b, c, l)``.

    >>> topo = EDNTopology(EDNParams(16, 4, 4, 2))
    >>> topo.params.num_inputs, topo.params.num_outputs
    (64, 64)
    """

    def __init__(self, params: EDNParams):
        self.params = params

    # ------------------------------------------------------------------
    # Stage geometry
    # ------------------------------------------------------------------

    def wire_bits(self, i: int) -> int:
        """Bit width of wire labels leaving stage ``i`` (0 = network inputs)."""
        return ilog2(self.params.wires_after_stage(i))

    def input_location(self, source: int) -> tuple[int, int]:
        """(hyperbar index, local port) fed by network input terminal ``source``."""
        p = self.params
        if not 0 <= source < p.num_inputs:
            raise LabelError(f"input terminal {source} out of range 0..{p.num_inputs - 1}")
        return source // p.a, source % p.a

    def hyperbar_input_location(self, i: int, wire: int) -> tuple[int, int]:
        """(switch, local port) of input ``wire`` at hyperbar stage ``i``."""
        p = self.params
        width = p.wires_after_stage(i - 1)
        if not 0 <= wire < width:
            raise LabelError(f"wire {wire} out of range 0..{width - 1} at stage {i} input")
        return wire // p.a, wire % p.a

    def hyperbar_output_label(self, i: int, switch: int, local_output: int) -> int:
        """Global label of ``local_output`` of ``switch`` in hyperbar stage ``i``."""
        p = self.params
        if not 0 <= switch < p.hyperbars_in_stage(i):
            raise LabelError(f"switch {switch} out of range in stage {i}")
        per_switch = p.b * p.c
        if not 0 <= local_output < per_switch:
            raise LabelError(f"local output {local_output} out of range 0..{per_switch - 1}")
        return switch * per_switch + local_output

    def crossbar_input_location(self, wire: int) -> tuple[int, int]:
        """(crossbar index, local port) of final-stage input ``wire``.

        The last hyperbar stage's buckets feed the crossbars directly.
        """
        p = self.params
        width = p.wires_after_stage(p.l)
        if not 0 <= wire < width:
            raise LabelError(f"wire {wire} out of range 0..{width - 1} at crossbar input")
        return wire // p.c, wire % p.c

    def crossbar_output_terminal(self, crossbar: int, local_output: int) -> int:
        """Network output terminal driven by ``local_output`` of ``crossbar``."""
        p = self.params
        if not 0 <= crossbar < p.num_crossbars:
            raise LabelError(f"crossbar {crossbar} out of range 0..{p.num_crossbars - 1}")
        if not 0 <= local_output < p.c:
            raise LabelError(f"local output {local_output} out of range 0..{p.c - 1}")
        return crossbar * p.c + local_output

    # ------------------------------------------------------------------
    # Interstage permutation (Eq. 1)
    # ------------------------------------------------------------------

    def interstage(self, i: int, y: int) -> int:
        """Stage-``i`` output wire ``y`` -> stage-``i+1`` input wire.

        Applies ``gamma_{log2(c), log2(a/c)}`` between consecutive hyperbar
        stages (``1 <= i < l``) and the identity from the last hyperbar
        stage into the crossbars (``i = l``).
        """
        p = self.params
        if not 1 <= i <= p.l:
            raise ConfigurationError(f"interstage index {i} out of range 1..{p.l}")
        width = p.wires_after_stage(i)
        if not 0 <= y < width:
            raise LabelError(f"wire {y} out of range 0..{width - 1} after stage {i}")
        if i == p.l:
            return y
        return gamma(y, ilog2(width), p.capacity_bits, p.fan_in_bits)

    def interstage_inverse(self, i: int, z: int) -> int:
        """Stage-``i+1`` input wire ``z`` -> the stage-``i`` output wire feeding it."""
        p = self.params
        if not 1 <= i <= p.l:
            raise ConfigurationError(f"interstage index {i} out of range 1..{p.l}")
        width = p.wires_after_stage(i)
        if not 0 <= z < width:
            raise LabelError(f"wire {z} out of range 0..{width - 1} before stage {i + 1}")
        if i == p.l:
            return z
        return gamma_inverse(z, ilog2(width), p.capacity_bits, p.fan_in_bits)

    # ------------------------------------------------------------------
    # Structural counts (used by the cost model and its tests)
    # ------------------------------------------------------------------

    def count_crosspoints(self) -> int:
        """Total crosspoints by explicit enumeration over every switch."""
        p = self.params
        per_hyperbar = p.a * p.b * p.c
        per_crossbar = p.c * p.c
        total = 0
        for i in range(1, p.l + 1):
            total += p.hyperbars_in_stage(i) * per_hyperbar
        total += p.num_crossbars * per_crossbar
        return total

    def count_wires(self) -> int:
        """Total wires: network inputs + every stage boundary + network outputs.

        Matches Eq. 3's accounting: interstage wires for ``i = 1..l`` (the
        ``i = l`` boundary is the hyperbar->crossbar link) plus one wire per
        input terminal and one per output terminal.
        """
        p = self.params
        total = p.num_inputs + p.num_outputs
        for i in range(1, p.l + 1):
            total += p.wires_after_stage(i)
        return total

    def stage_summary(self) -> list[dict]:
        """Per-stage structural facts, handy for rendering and tests."""
        p = self.params
        rows = []
        for i in range(1, p.l + 1):
            rows.append(
                {
                    "stage": i,
                    "kind": "hyperbar",
                    "switches": p.hyperbars_in_stage(i),
                    "switch_shape": f"H({p.a}->{p.b}x{p.c})",
                    "wires_in": p.wires_after_stage(i - 1),
                    "wires_out": p.wires_after_stage(i),
                }
            )
        rows.append(
            {
                "stage": p.l + 1,
                "kind": "crossbar",
                "switches": p.num_crossbars,
                "switch_shape": f"{p.c}x{p.c}",
                "wires_in": p.wires_after_stage(p.l),
                "wires_out": p.num_outputs,
            }
        )
        return rows

    def __repr__(self) -> str:
        return f"EDNTopology({self.params})"
