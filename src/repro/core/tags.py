"""Destination tags and digit retirement (paper, Section 2).

Every message entering an ``EDN(a, b, c, l)`` carries an
``l*log2(b) + log2(c)``-bit *destination tag*

    ``D = d_{l-1} d_{l-2} ... d_0 x``

with the ``d_i`` base-``b`` digits and ``x`` a base-``c`` digit.  The
canonical routing algorithm *retires* ``d_{l-i}`` at hyperbar stage ``i``
and ``x`` at the final crossbar stage (Lemma 1).

Corollary 2 observes that the digits may be retired in any fixed order: a
message tagged ``D`` then lands on the output whose digit string is the
reordered tag, so composing the network with the *inverse* of that
reordering at the outputs restores correctness.  Figure 6 uses exactly this
trick to make ``EDN(64,16,4,2)`` — which blocks catastrophically on the
identity permutation — route the identity conflict-free.  The
:class:`RetirementOrder` class captures the order and constructs the fix-up
permutation.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.core.config import EDNParams
from repro.core.exceptions import ConfigurationError, LabelError
from repro.core.labels import MixedRadix
from repro.core.permutations import Permutation

__all__ = ["DestinationTag", "RetirementOrder", "tag_scheme"]


def tag_scheme(params: EDNParams) -> MixedRadix:
    """The mixed-radix layout of destination tags: ``l`` base-``b`` digits + one base-``c``."""
    return MixedRadix((params.b,) * params.l + (params.c,))


@dataclass(frozen=True)
class DestinationTag:
    """A destination tag ``D = d_{l-1} ... d_0 x``.

    ``digits`` stores the base-``b`` digits most-significant-first
    (``digits[0]`` is ``d_{l-1}``, ``digits[-1]`` is ``d_0``); ``x`` is the
    final base-``c`` crossbar digit.

    >>> params = EDNParams(16, 4, 4, 2)
    >>> tag = DestinationTag.from_output(27, params)
    >>> tag.digits, tag.x
    ((1, 2), 3)
    >>> tag.output(params)
    27
    """

    digits: tuple[int, ...]
    x: int

    @classmethod
    def from_output(cls, output: int, params: EDNParams) -> "DestinationTag":
        """Tag that routes (canonically) to output terminal ``output``."""
        expansion = tag_scheme(params).to_digits(output)
        return cls(digits=expansion[:-1], x=expansion[-1])

    def output(self, params: EDNParams) -> int:
        """The output terminal this tag names (canonical retirement)."""
        return tag_scheme(params).from_digits(self.digits + (self.x,))

    def validate(self, params: EDNParams) -> None:
        """Raise :class:`LabelError` unless the tag fits ``params``."""
        if len(self.digits) != params.l:
            raise LabelError(
                f"tag has {len(self.digits)} routing digits, network needs {params.l}"
            )
        for i, digit in enumerate(self.digits):
            if not 0 <= digit < params.b:
                raise LabelError(f"digit {i} = {digit} out of range for base {params.b}")
        if not 0 <= self.x < params.c:
            raise LabelError(f"crossbar digit {self.x} out of range for base {params.c}")

    def digit_for_stage(self, stage: int, order: "RetirementOrder | None" = None) -> int:
        """The base-``b`` digit consumed at hyperbar stage ``stage`` (1-indexed).

        Canonically stage ``i`` retires ``d_{l-i}``, i.e. ``digits[i-1]``;
        a :class:`RetirementOrder` redirects the lookup.
        """
        l = len(self.digits)
        if not 1 <= stage <= l:
            raise LabelError(f"stage {stage} out of range 1..{l}")
        if order is None:
            return self.digits[stage - 1]
        return self.digits[order.position_for_stage(stage)]

    def __str__(self) -> str:
        body = "".join(str(d) for d in self.digits)
        return f"D={body}|x={self.x}"


class RetirementOrder:
    """A fixed order in which the ``l`` routing digits are retired.

    ``order[i]`` is the index (into the most-significant-first ``digits``
    tuple) of the digit consumed at hyperbar stage ``i + 1``.  The canonical
    order is ``(0, 1, ..., l-1)``: stage 1 retires ``d_{l-1}``.

    Corollary 2: routing tag ``D`` with order ``order`` delivers the message
    to the output whose digit string is ``digits`` permuted by the order;
    :meth:`fixup_permutation` returns the output relabelling that maps each
    landing terminal back to the intended one, realizing Figure 6's extra
    stage.
    """

    def __init__(self, order: Sequence[int]):
        order = tuple(int(i) for i in order)
        if sorted(order) != list(range(len(order))):
            raise ConfigurationError(
                f"retirement order must be a permutation of 0..{len(order) - 1}, got {order}"
            )
        self._order = order

    @classmethod
    def canonical(cls, l: int) -> "RetirementOrder":
        return cls(range(l))

    @classmethod
    def reversed_order(cls, l: int) -> "RetirementOrder":
        """Retire the *least* significant base-``b`` digit first.

        This is the order that lets Figure 6's modified ``EDN(64,16,4,2)``
        route the identity permutation: consecutive sources entering one
        hyperbar then spread across buckets instead of piling into one.
        """
        return cls(range(l - 1, -1, -1))

    @property
    def order(self) -> tuple[int, ...]:
        return self._order

    @property
    def l(self) -> int:
        return len(self._order)

    def is_canonical(self) -> bool:
        return all(v == i for i, v in enumerate(self._order))

    def position_for_stage(self, stage: int) -> int:
        """Digit index retired at hyperbar stage ``stage`` (1-indexed)."""
        if not 1 <= stage <= len(self._order):
            raise LabelError(f"stage {stage} out of range 1..{len(self._order)}")
        return self._order[stage - 1]

    def landing_output(self, tag: DestinationTag, params: EDNParams) -> int:
        """Output terminal where a tag actually lands under this order.

        The network structurally interprets the digit consumed at stage
        ``i`` as digit ``d_{l-i}`` of the landing address, so the landing
        digit string is ``digits`` read in retirement order.
        """
        landed = tuple(tag.digits[idx] for idx in self._order)
        return tag_scheme(params).from_digits(landed + (tag.x,))

    def fixup_permutation(self, params: EDNParams) -> Permutation:
        """Output relabelling restoring canonical destinations (Corollary 2).

        For every tag ``D``, ``fixup(landing_output(D)) == D.output()``.
        Wiring this permutation after the network (Figure 6's "inverse
        permutation" stage) makes non-canonical retirement transparent.
        """
        if self.l != params.l:
            raise ConfigurationError(
                f"order covers {self.l} digits but network has l={params.l} stages"
            )
        scheme = tag_scheme(params)
        inverse = [0] * self.l
        for stage_pos, digit_idx in enumerate(self._order):
            inverse[digit_idx] = stage_pos
        mapping = []
        for landed_value in range(params.num_outputs):
            expansion = scheme.to_digits(landed_value)
            landed_digits, x = expansion[:-1], expansion[-1]
            intended = tuple(landed_digits[inverse[j]] for j in range(self.l))
            mapping.append(scheme.from_digits(intended + (x,)))
        return Permutation(mapping)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, RetirementOrder):
            return self._order == other._order
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._order)

    def __repr__(self) -> str:
        return f"RetirementOrder({list(self._order)!r})"
