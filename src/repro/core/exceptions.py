"""Exception hierarchy for the EDN reproduction library.

All library errors derive from :class:`EDNError` so that callers can catch
library-specific failures without masking programming errors such as
``TypeError``.
"""

from __future__ import annotations

__all__ = [
    "EDNError",
    "ConfigurationError",
    "RoutingError",
    "LabelError",
    "ScheduleError",
    "ConvergenceError",
]


class EDNError(Exception):
    """Base class for every error raised by :mod:`repro`."""


class ConfigurationError(EDNError, ValueError):
    """A network, switch, or system was parameterized inconsistently.

    Examples: a hyperbar whose bucket count is not a power of two, an EDN
    whose capacity does not divide its switch input count, or a restricted
    access system with a non-positive cluster size.
    """


class LabelError(EDNError, ValueError):
    """A wire label, digit string, or destination tag is out of range."""


class RoutingError(EDNError, RuntimeError):
    """Routing violated a structural invariant of the network.

    This indicates a bug in the library (for example a message arriving at a
    switch it is not wired to), never ordinary contention; contention is a
    modelled outcome, reported through result objects rather than raised.
    """


class ScheduleError(EDNError, RuntimeError):
    """A restricted-access schedule selected an invalid processor."""


class ConvergenceError(EDNError, RuntimeError):
    """A fixed-point iteration failed to converge within its budget."""
