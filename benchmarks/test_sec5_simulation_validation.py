"""Benchmark ``sec5_sim``: cycle-accurate drain of the MasPar router vs the model."""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.experiments import sec5_raedn


def test_sec5_simulation_validation(benchmark):
    result = benchmark(sec5_raedn.run_simulation, runs=3, seed=42)
    emit(result)
    rows = {row[0]: row for row in result.tables["model vs simulation"][1]}
    model, simulated = rows["cycles to drain"][1], rows["cycles to drain"][2]
    # Shape: the q/PA(1) head phase dominates; simulation exceeds the
    # analytic mean (straggling cluster queues) but stays within ~2x.
    assert model < simulated < 2.0 * model
    # Hard floor: q = 16 cycles is unbeatable.
    assert simulated >= 16
