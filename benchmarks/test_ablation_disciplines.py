"""Benchmark ``ablation_*``: the DESIGN.md design-choice ablations."""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.experiments import ablations


def test_ablation_priority(benchmark):
    result = benchmark(ablations.run_priority, cycles=100, seed=0)
    emit(result)
    rows = {row[0]: row for row in result.tables["discipline"][1]}
    label, random_ = rows["label"], rows["random"]
    # Acceptance is discipline-independent (the analytic model never sees it).
    assert abs(label[1] - random_[1]) < 0.03
    # Fairness is not: label priority spreads deliveries more unevenly.
    assert label[3] > random_[3]


def test_ablation_wire_policy(benchmark):
    result = benchmark(ablations.run_wire_policy, trials=150, seed=0)
    emit(result)
    trials, identical = result.tables["acceptance equivalence"][1][0]
    # Work conservation: the two wire policies accept identical sets.
    assert identical == trials


def test_ablation_schedule(benchmark):
    result = benchmark(ablations.run_schedules, runs=12, seed=0)
    emit(result)
    rows = result.tables["cycles to drain a random permutation"][1]
    means = [row[1] for row in rows]
    # Random permutations wash out the schedule choice (Section 5.1's
    # equivalence remark): all three means within 15% of each other.
    assert max(means) / min(means) < 1.15
