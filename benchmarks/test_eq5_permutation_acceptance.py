"""Benchmark ``perm_pa``: Eq. 5's permutation acceptance vs simulation (Lemma 2)."""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.core.analysis import acceptance_probability, permutation_acceptance
from repro.core.config import EDNParams
from repro.experiments.base import ExperimentResult
from repro.sim.montecarlo import measure_acceptance
from repro.workloads import PermutationTraffic
from repro.sim.vectorized import VectorizedEDN

CONFIGS = [(16, 4, 4, 1), (16, 4, 4, 2), (16, 4, 4, 3), (8, 2, 4, 3), (64, 16, 4, 2)]


def run(cycles: int = 80, seed: int = 0) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="perm_pa",
        title="Eq. 5: permutation-traffic acceptance (Lemma 2) vs simulation",
    )
    rows = []
    for cfg in CONFIGS:
        params = EDNParams(*cfg)
        analytic = permutation_acceptance(params, 1.0)
        uniform = acceptance_probability(params, 1.0)
        measured = measure_acceptance(
            VectorizedEDN(params),
            PermutationTraffic(params.num_inputs, params.num_outputs),
            cycles=cycles,
            seed=seed,
        )
        rows.append(
            [str(params), uniform, analytic, measured.point,
             params.l in measured.blocked_by_stage or (params.l + 1) in measured.blocked_by_stage]
        )
    result.tables["Eq.5 vs simulation"] = (
        ["network", "PA (Eq.4)", "PAp (Eq.5)", "PAp simulated", "final-stage blocking seen"],
        rows,
    )
    return result


def test_eq5_permutation_acceptance(benchmark):
    result = benchmark(run)
    emit(result)
    for name, uniform, analytic, simulated, final_blocking in result.tables[
        "Eq.5 vs simulation"
    ][1]:
        # Lemma 2: the last two stages never block under permutations.
        assert final_blocking is False
        # Eq. 5 >= Eq. 4, and simulation tracks Eq. 5.
        assert analytic >= uniform - 1e-12
        assert simulated == pytest.approx(analytic, abs=0.06)
    # The l = 1 member is exactly conflict-free.
    first = result.tables["Eq.5 vs simulation"][1][0]
    assert first[2] == 1.0 and first[3] == 1.0
