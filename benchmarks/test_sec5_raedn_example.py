"""Benchmark ``sec5_example``: the RA-EDN(16,4,2,16) worked example (Section 5)."""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.experiments import sec5_raedn


def test_sec5_raedn_example(benchmark):
    result = benchmark(sec5_raedn.run)
    emit(result)
    rows = {row[0]: row for row in result.tables["drain model"][1]}
    # Paper numbers: PA(1) = .544, J = 5, T ≈ 34.41 network cycles.
    assert rows["PA(1)"][2] == pytest.approx(0.544, abs=5e-4)
    assert rows["tail cycles J"][2] == 5
    assert rows["expected total T"][2] == pytest.approx(34.41, abs=0.1)
    # The drain rates fall fast: after one cycle fewer than half remain.
    tail = [y for _, y in sorted(result.series["tail leftover rate r_j"])]
    assert tail[0] < 0.5
    assert tail[-1] * 1024 < 1.0
