"""Benchmark ``admissibility``: one-pass routable permutations (extension)."""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.experiments import extensions


def test_ext_admissibility(benchmark):
    # Exhaustive 8! censuses inside: one benchmark round is plenty.
    result = benchmark.pedantic(
        extensions.run_admissibility,
        kwargs=dict(samples=300, seed=0),
        rounds=1,
        iterations=1,
    )
    emit(result)
    rows = {row[0]: row for row in result.tables["admissible fraction"][1]}

    delta = rows["delta EDN(2,2,1,3), 8x8"][1]
    multi = rows["EDN(4,2,2,2), 8x8"][1]
    single_stage = rows["EDN(8,2,4,1), 8x8"][1]

    # Exhaustive 8x8 censuses: delta admits exactly 2^12/8! of permutations;
    # capacity enlarges the set; the l=1 member admits everything (Lemma 2).
    assert abs(delta - 4096 / 40320) < 1e-12
    assert multi > delta
    assert single_stage == 1.0

    # At MasPar scale a random permutation essentially never one-passes:
    # Section 5's drain model exists for a reason.
    assert rows["EDN(64,16,4,2), 1024x1024"][1] < 0.05
