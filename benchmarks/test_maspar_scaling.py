"""Benchmark ``scaling``: the MasPar router family from 1K to 256K PEs."""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.experiments import scaling


def test_maspar_scaling(benchmark):
    result = benchmark(scaling.run)
    emit(result)
    rows = result.tables["family scaling"][1]
    assert [row[1] for row in rows] == [1_024, 16_384, 262_144]

    pa = [row[3] for row in rows]
    drain = [row[4] for row in rows]
    per_port = [row[6] for row in rows]

    # PA decays gently with depth; the 16K point is the paper's .544.
    assert pa[0] > pa[1] > pa[2]
    assert pa[1] == pytest.approx(0.544, abs=5e-4)
    assert pa[0] - pa[2] < 0.2

    # Drain time grows by a few cycles per 16x size step, not by factors.
    assert drain[0] < drain[1] < drain[2]
    assert drain[2] < 2.0 * drain[0]

    # Cost per port grows by exactly one hyperbar's share (b*c = 64
    # crosspoints) per added stage — logarithmic in machine size.
    assert per_port[1] - per_port[0] == pytest.approx(64.0)
    assert per_port[2] - per_port[1] == pytest.approx(64.0)
