"""Benchmark ``fig7_mc``/``fig8_mc``: Monte-Carlo validation of Eq. 4's curves."""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.experiments import fig7_families


@pytest.mark.parametrize("io_size", [8, 16])
def test_fig7_montecarlo_validation(benchmark, io_size):
    result = benchmark(
        fig7_families.run_montecarlo_validation,
        io_size,
        max_inputs=2048,
        cycles=40,
        seed=0,
    )
    emit(result)
    rows = result.tables["Eq.4 vs simulation"][1]
    assert rows
    for _net, _inputs, analytic, simulated, gap, cycles in rows:
        # The analytic curve must track simulation closely...
        assert abs(gap) < 0.08
        assert 0.0 < simulated <= 1.0
        assert cycles == 40  # fixed budget: every point spends all cycles
    # ... and its independence approximation biases it optimistic on the
    # deeper (multi-stage) members overall.
    deep = [row for row in rows if row[1] > io_size]
    assert sum(row[4] for row in deep) > 0.0
