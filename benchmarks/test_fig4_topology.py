"""Benchmark ``fig4``: structure of EDN(16,4,4,2) (Figures 3-4)."""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.experiments import fig4_topology


def test_fig4_topology(benchmark):
    result = benchmark(fig4_topology.run)
    emit(result)
    invariants = {row[0]: row[1] for row in result.tables["invariants"][1]}
    # Figure 4: 64 in / 64 out, 2 hyperbar columns of 4 switches, 16 4x4 crossbars.
    assert invariants["inputs"] == 64
    assert invariants["outputs"] == 64
    assert invariants["paths per pair (c^l)"] == 16
    stage_rows = result.tables["stages"][1]
    assert [row[2] for row in stage_rows] == [4, 4, 16]
    # Eq. 2 / Eq. 3 agree with enumeration.
    assert invariants["crosspoints (Eq. 2)"] == invariants["crosspoints (enumerated)"]
    assert invariants["wires (Eq. 3)"] == invariants["wires (enumerated)"]
