"""Benchmark ``nuts``: multipath vs hot-spot (NUTS) traffic (Section 1's claim)."""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.experiments import hotspot


def test_nuts_hotspot(benchmark):
    result = benchmark(hotspot.run, hot_fractions=(0.0, 0.05, 0.1, 0.2), cycles=50, seed=0)
    emit(result)
    rows = {row[0]: row[1:] for row in result.tables["PA vs hot fraction"][1]}
    crossbar = rows[f"crossbar {hotspot.SIZE}"]
    delta = rows["delta EDN(16,16,1,2), 1 path"]
    multi64 = rows["EDN(16,4,4,3), 64 paths"]
    multi16 = rows["EDN(32,8,4,2), 16 paths"]

    # Everyone degrades as the hot spot grows (output contention is universal).
    for series in (crossbar, delta, multi64, multi16):
        assert series[-1] < series[0]

    # The paper's claim: multipath absorbs NUTS better.  Measure each
    # network's internal blocking (its excess loss over the crossbar, which
    # only suffers output contention) at the strongest hot spot.
    delta_excess = crossbar[-1] - delta[-1]
    multi16_excess = crossbar[-1] - multi16[-1]
    multi64_excess = crossbar[-1] - multi64[-1]
    assert delta_excess > multi16_excess
    assert delta_excess > multi64_excess
