"""Benchmark ``fault_tolerance``: multipath reliability (extension of Theorem 2)."""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.experiments import fault_tolerance


def test_fault_tolerance(benchmark):
    result = benchmark(fault_tolerance.run, draws=6, seed=0)
    emit(result)
    rows = {row[0]: row[1:] for row in result.tables["mean pair connectivity"][1]}
    delta = rows["delta EDN(4,4,1,2), 1 path"]
    four = rows["EDN(4,2,2,2), 4 paths"]
    sixteen = rows["EDN(8,2,4,2), 16 paths"]

    # Healthy networks are fully connected.
    assert delta[0] == four[0] == sixteen[0] == 1.0

    # Capacity buys graceful degradation at every nonzero failure rate.
    for k in range(1, len(delta)):
        assert sixteen[k] >= four[k] >= delta[k]
        assert sixteen[k] > delta[k]

    # The single-path delta collapses fast: at f = 0.3 most pairs are dead.
    assert delta[-1] < 0.6
    # The 16-path EDN shrugs off the same damage.
    assert sixteen[-1] > 0.85
