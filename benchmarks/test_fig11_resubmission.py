"""Benchmark ``fig11``: effect of resubmitting rejected requests (Figure 11)."""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.experiments import fig11_resubmission


def test_fig11_resubmission(benchmark):
    result = benchmark(fig11_resubmission.run)
    emit(result)

    for a, b, c in fig11_resubmission.FAMILIES:
        ignored = dict(result.series[f"EDN({a},{b},{c},*) ignored"])
        resubmitted = dict(result.series[f"EDN({a},{b},{c},*) resubmitted"])
        # Paper shape 1: resubmission strictly lowers acceptance everywhere.
        for x, pa in ignored.items():
            assert resubmitted[x] < pa
        # Paper shape 2: the gap grows with network size.
        xs = sorted(ignored)
        gaps = [ignored[x] - resubmitted[x] for x in xs]
        assert gaps[-1] > gaps[0]

    # Paper shape 3: the 16-I/O-switch family dominates the 4-I/O family at
    # matched sizes (4^l*4 == 2^(2l+1)*2).
    big = dict(result.series["EDN(16,4,4,*) resubmitted"])
    small = dict(result.series["EDN(4,2,2,*) resubmitted"])
    matched = sorted(set(big) & set(small))
    assert matched
    for x in matched:
        assert big[x] > small[x]
