"""Shared helpers for the benchmark suite.

Every benchmark regenerates one paper artifact (figure, worked example, or
equation), asserts its *shape* (who wins, orderings, crossovers — the
reproduction contract from DESIGN.md), and prints the series/rows so a run
of ``pytest benchmarks/ --benchmark-only`` doubles as "regenerate all
figures".  pytest-benchmark times the regeneration itself.
"""

from __future__ import annotations


def emit(result) -> None:
    """Print an ExperimentResult report under the benchmark's own header."""
    print()
    print(result.render())
