"""Benchmark ``buffered``: packet-switched EDN throughput/latency (extension)."""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.core.analysis import acceptance_probability
from repro.core.config import EDNParams
from repro.experiments import extensions


def test_ext_buffered(benchmark):
    # The buffered simulator is a pure-Python queueing loop: run one
    # benchmark round rather than pytest-benchmark's default calibration.
    result = benchmark.pedantic(
        extensions.run_buffered,
        kwargs=dict(rates=(0.5, 1.0), depths=(1, 4), cycles=250, warmup=80),
        rounds=1,
        iterations=1,
    )
    emit(result)
    rows = result.tables["throughput & latency"][1]
    by_key = {(row[0], row[1]): row for row in rows}
    pa1 = acceptance_probability(EDNParams(16, 4, 4, 2), 1.0)

    # Single buffering saturates *near* the bufferless PA(1) — slightly
    # below it, because head-of-line blocking idles wires that circuit
    # switching would have reallocated.  Deeper FIFOs push past PA(1).
    assert abs(by_key[(1, 1.0)][2] - pa1) < 0.05
    assert by_key[(4, 1.0)][2] > pa1
    assert by_key[(4, 1.0)][2] > by_key[(1, 1.0)][2]

    # Deeper buffers pay in latency at saturation.
    assert by_key[(4, 1.0)][3] > by_key[(1, 1.0)][3]

    # Light load flows freely regardless of depth.
    assert abs(by_key[(1, 0.5)][2] - 0.5) < 0.1
