"""Benchmark ``fig8``: PA(1) vs size for the 16-I/O hyperbar families (Figure 8)."""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.experiments import fig7_families


def test_fig8_pa_families_16(benchmark):
    result = benchmark(fig7_families.run, 16)
    emit(result)

    families = ["EDN(16,2,8,*)", "EDN(16,4,4,*)", "EDN(16,8,2,*)", "EDN(16,16,1,*)"]
    curves = {name: dict(result.series[name]) for name in families}

    # Capacity ordering within the family (beyond the one-switch size).
    shared = set.intersection(*(set(c) for c in curves.values()))
    checked = 0
    for x in sorted(shared):
        if x <= 16:
            continue
        assert (
            curves["EDN(16,2,8,*)"][x]
            > curves["EDN(16,4,4,*)"][x]
            > curves["EDN(16,8,2,*)"][x]
            > curves["EDN(16,16,1,*)"][x]
        )
        checked += 1
    assert checked >= 1

    # Figure 8 vs Figure 7: 16-I/O switches beat 8-I/O at matched size and
    # capacity (the c = 2 members share sizes 128, 8192, 524288).
    fig7 = fig7_families.run(8)
    seven = dict(fig7.series["EDN(8,4,2,*)"])
    sixteen = curves["EDN(16,8,2,*)"]
    matched = sorted(set(seven) & set(sixteen))
    assert matched
    for x in matched:
        if x > 16:
            assert sixteen[x] > seven[x]
