"""Perf smoke harness: batched vs per-cycle Monte-Carlo wall-clock.

Times ``measure_acceptance`` over the same workload through the per-cycle
engine (:class:`~repro.sim.vectorized.VectorizedEDN`, ``batch=1``) and the
batched engine (:class:`~repro.sim.batched.BatchedEDN`, auto chunking) at
``N`` in {1024, 4096, 16384} (the ``EDN(16,4,4,l)`` family for
``l`` in {4, 5, 6}), then writes ``BENCH_batched_routing.json`` at the
repository root so later PRs can track the perf trajectory.

Run from the repository root::

    PYTHONPATH=src python benchmarks/perf_smoke.py
    PYTHONPATH=src python benchmarks/perf_smoke.py --backend-matrix
    PYTHONPATH=src python benchmarks/perf_smoke.py --workload-matrix

Default mode exits non-zero if the N=4096 point falls below the 5x speedup
floor this optimization was merged under (the recorded acceptance
criterion).  ``--backend-matrix`` instead sweeps every registered
``repro.api`` backend of the same EDNs and records per-backend wall-clock
into ``BENCH_backend_matrix.json`` (the reference engine gets a reduced
cycle budget — it routes per message, in Python — and times are reported
per cycle so backends stay comparable).  ``--workload-matrix`` sweeps the
``workload_matrix`` experiment's topology x traffic grid through the
batched backend and records per-cell wall-clock and acceptance into
``BENCH_workload_matrix.json``, asserting every built-in workload keeps
the fast path (vectorized ``generate_batch``, natively batched router).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

from repro.api import NetworkSpec, available_backends, build_router, resolve_backend
from repro.core.config import EDNParams
from repro.sim.batched import BatchedEDN
from repro.sim.montecarlo import measure_acceptance
from repro.sim.vectorized import VectorizedEDN
from repro.workloads import TrafficGenerator, UniformTraffic, make_traffic

#: EDN(16,4,4,l) has (16/4)^l * 4 inputs: l = 4, 5, 6 -> 1K, 4K, 16K.
SIZES = {1_024: 4, 4_096: 5, 16_384: 6}
CYCLES = 200
SEED = 0
REPEATS = 3
SPEEDUP_FLOOR = 5.0  # acceptance criterion, enforced at N = 4096
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_batched_routing.json"

MATRIX_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_backend_matrix.json"
#: Cycle budgets per backend: the array engines amortize, the per-message
#: reference engine costs ~10^4 slower per cycle at N=16K.
MATRIX_CYCLES = {"batched": 200, "vectorized": 200, "reference": 2}

WORKLOAD_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_workload_matrix.json"
WORKLOAD_CYCLES = 200


def _best_of(repeats: int, fn) -> tuple[float, object]:
    best, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def run(output: Path = OUTPUT) -> dict:
    results = []
    for n_inputs, stages in SIZES.items():
        params = EDNParams(16, 4, 4, stages)
        assert params.num_inputs == n_inputs
        traffic = UniformTraffic(n_inputs, n_inputs, 1.0)
        per_cycle_s, per_cycle = _best_of(
            REPEATS,
            lambda: measure_acceptance(
                VectorizedEDN(params), traffic, cycles=CYCLES, seed=SEED, batch=1
            ),
        )
        batched_engine = BatchedEDN(params)
        batched_s, batched = _best_of(
            REPEATS,
            lambda: measure_acceptance(
                batched_engine, traffic, cycles=CYCLES, seed=SEED
            ),
        )
        entry = {
            "network": str(params),
            "n_inputs": n_inputs,
            "cycles": CYCLES,
            "per_cycle_seconds": round(per_cycle_s, 4),
            "batched_seconds": round(batched_s, 4),
            "speedup": round(per_cycle_s / batched_s, 2),
            "chunk": batched_engine.preferred_batch(),
            "pa_per_cycle": round(per_cycle.point, 6),
            "pa_batched": round(batched.point, 6),
        }
        results.append(entry)
        print(
            f"N={n_inputs:>6}: per-cycle {per_cycle_s:.3f}s  "
            f"batched {batched_s:.3f}s  speedup {entry['speedup']:.1f}x"
        )

    report = {
        "benchmark": "batched_routing",
        "workload": f"measure_acceptance, uniform traffic r=1.0, {CYCLES} cycles, seed {SEED}",
        "engines": {
            "per_cycle": "VectorizedEDN via measure_acceptance(batch=1)",
            "batched": "BatchedEDN via measure_acceptance(batch=auto)",
        },
        "host": {
            "machine": platform.machine(),
            "python": platform.python_version(),
        },
        "results": results,
    }
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {output}")
    return report


def run_backend_matrix(output: Path = MATRIX_OUTPUT) -> dict:
    """Time every registered backend of the benchmark EDNs; write JSON.

    Each (network, backend) cell times ``measure_acceptance`` under the
    backend's cycle budget, best of :data:`REPEATS` (the default mode's
    noise-suppression methodology); ``seconds_per_cycle`` is the
    comparable figure, ``seconds`` the recorded best wall-clock.
    """
    results = []
    for n_inputs, stages in SIZES.items():
        spec = NetworkSpec.edn(16, 4, 4, stages)
        assert spec.n_inputs == n_inputs
        traffic = UniformTraffic(n_inputs, n_inputs, 1.0)
        for backend in available_backends(spec):
            cycles = MATRIX_CYCLES.get(backend, CYCLES)
            router = build_router(spec, backend)
            elapsed, measurement = _best_of(
                REPEATS,
                lambda: measure_acceptance(router, traffic, cycles=cycles, seed=SEED),
            )
            entry = {
                "network": str(spec.edn_params),
                "n_inputs": n_inputs,
                "backend": backend,
                "cycles": cycles,
                "seconds": round(elapsed, 4),
                "seconds_per_cycle": round(elapsed / cycles, 6),
                "pa": round(measurement.point, 6),
            }
            results.append(entry)
            print(
                f"N={n_inputs:>6} {backend:>10}: {elapsed:.3f}s over "
                f"{cycles} cycles ({entry['seconds_per_cycle']:.6f} s/cycle)"
            )
    report = {
        "benchmark": "backend_matrix",
        "workload": "measure_acceptance, uniform traffic r=1.0, seed 0",
        "host": {
            "machine": platform.machine(),
            "python": platform.python_version(),
        },
        "results": results,
    }
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {output}")
    return report


def run_workload_matrix(output: Path = WORKLOAD_OUTPUT) -> dict:
    """Time the topology x traffic grid on the batched backend; write JSON.

    Reuses the grid of :mod:`repro.experiments.workload_matrix` so the
    recorded numbers describe the registered experiment.  Each cell
    asserts the fast-path contract this subsystem was merged under:
    ``auto`` resolves to a natively batched router, and the workload's
    ``generate_batch`` is an override of the vectorized kind (never the
    base class's per-cycle stacking loop).
    """
    from repro.experiments.workload_matrix import TOPOLOGIES, TRAFFIC

    results = []
    for topology in TOPOLOGIES:
        spec = NetworkSpec.parse(topology)
        backend = resolve_backend(spec, "auto")
        assert backend.batched, f"auto gave {spec} the non-batched {backend.name}"
        router = backend.builder(spec)
        for traffic_text in TRAFFIC:
            generator = make_traffic(traffic_text, router.n_inputs, router.n_outputs)
            assert (
                type(generator).generate_batch is not TrafficGenerator.generate_batch
            ), f"{traffic_text} fell back to the per-cycle generate loop"
            elapsed, measurement = _best_of(
                REPEATS,
                lambda: measure_acceptance(
                    router, generator, cycles=WORKLOAD_CYCLES, seed=SEED
                ),
            )
            entry = {
                "topology": spec.label,
                "traffic": traffic_text,
                "backend": backend.name,
                "generator": type(generator).__name__,
                "cycles": WORKLOAD_CYCLES,
                "seconds": round(elapsed, 4),
                "seconds_per_cycle": round(elapsed / WORKLOAD_CYCLES, 6),
                "pa": round(measurement.point, 6),
            }
            results.append(entry)
            print(
                f"{spec.label:>13} x {traffic_text:<36}: {elapsed:.4f}s "
                f"over {WORKLOAD_CYCLES} cycles  PA={entry['pa']:.4f}"
            )
    report = {
        "benchmark": "workload_matrix",
        "workload": "measure_acceptance over the repro.experiments.workload_matrix grid, seed 0",
        "fast_path": (
            "asserted per cell: natively batched router under backend=auto, "
            "vectorized generate_batch on every built-in traffic model"
        ),
        "host": {
            "machine": platform.machine(),
            "python": platform.python_version(),
        },
        "results": results,
    }
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {output}")
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--backend-matrix",
        action="store_true",
        help="sweep every repro.api backend instead of the batched-vs-per-cycle floor check",
    )
    parser.add_argument(
        "--workload-matrix",
        action="store_true",
        help="sweep the workload_matrix topology x traffic grid on the batched backend",
    )
    args = parser.parse_args(argv)
    if args.backend_matrix:
        run_backend_matrix()
        return 0
    if args.workload_matrix:
        run_workload_matrix()
        return 0
    report = run()
    at_4096 = next(r for r in report["results"] if r["n_inputs"] == 4_096)
    if at_4096["speedup"] < SPEEDUP_FLOOR:
        print(
            f"FAIL: N=4096 speedup {at_4096['speedup']:.1f}x "
            f"below the {SPEEDUP_FLOOR:.0f}x floor",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
