"""Perf smoke harness: batched vs per-cycle Monte-Carlo wall-clock.

Times ``measure_acceptance`` over the same workload through the per-cycle
engine (:class:`~repro.sim.vectorized.VectorizedEDN`, ``batch=1``) and the
batched engine (:class:`~repro.sim.batched.BatchedEDN`, auto chunking) at
``N`` in {1024, 4096, 16384} (the ``EDN(16,4,4,l)`` family for
``l`` in {4, 5, 6}), then writes ``BENCH_batched_routing.json`` at the
repository root so later PRs can track the perf trajectory.

Run from the repository root::

    PYTHONPATH=src python benchmarks/perf_smoke.py
    PYTHONPATH=src python benchmarks/perf_smoke.py --backend-matrix
    PYTHONPATH=src python benchmarks/perf_smoke.py --workload-matrix
    PYTHONPATH=src python benchmarks/perf_smoke.py --plan-cache
    PYTHONPATH=src python benchmarks/perf_smoke.py --baseline-matrix
    PYTHONPATH=src python benchmarks/perf_smoke.py --fault-matrix
    PYTHONPATH=src python benchmarks/perf_smoke.py --serve-matrix
    PYTHONPATH=src python benchmarks/perf_smoke.py --saturation
    PYTHONPATH=src python benchmarks/perf_smoke.py --fault-buffered

Default mode exits non-zero if the N=4096 point falls below the 5x speedup
floor this optimization was merged under (the recorded acceptance
criterion).  ``--backend-matrix`` instead sweeps every registered
``repro.api`` backend of the same EDNs and records per-backend wall-clock
into ``BENCH_backend_matrix.json`` (the reference engine gets a reduced
cycle budget — it routes per message, in Python — and times are reported
per cycle so backends stay comparable).  ``--workload-matrix`` sweeps the
``workload_matrix`` experiment's topology x traffic grid through the
batched backend and records per-cell wall-clock and acceptance into
``BENCH_workload_matrix.json``, asserting every built-in workload keeps
the fast path (vectorized ``generate_batch``, natively batched router).
``--fault-matrix`` draws a seeded wire-fault pattern on every family's
stage graph and times faulted Monte-Carlo through the compiled masked
plans against the per-cycle loop reference (bit-identical counts
asserted per cell) and, on EDN, the per-message grant-semantics
reference (>=10x per-cycle floor at N=4096), recording
``BENCH_fault_matrix.json``.  ``--serve-matrix`` benchmarks the
``repro.serve`` simulation service end to end — cells/sec against worker
count (>=3x 1->4 workers asserted on >=4-core hosts), four concurrent
clients pushing >=1000 overlapping cells through one instance (server
dedupe rate floor 0.5), per-worker plan-cache hit rates, streaming
partials, and service-vs-inline bit-identity — into ``BENCH_serve.json``.
``--saturation`` times buffered stepping at N=4096 — the compiled
per-wire FIFO kernels against the legacy per-packet deque engine (>=5x
floor, throughput agreement asserted) — and records the ``saturation``
experiment's detected knees at N=64 into ``BENCH_saturation.json``.
``--fault-buffered`` times faulty vs fault-free buffered stepping at
N=4096 through the same compiled FIFO kernels (fault-overhead ceiling
1.5x asserted, whole-run packet conservation and ``apply_faults`` drop
accounting checked) into ``BENCH_fault_buffered.json``.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

from repro.api import NetworkSpec, available_backends, build_router, resolve_backend
from repro.core.config import EDNParams
from repro.sim.batched import BatchedEDN
from repro.sim.montecarlo import measure_acceptance
from repro.sim.vectorized import VectorizedEDN
from repro.workloads import TrafficGenerator, UniformTraffic, make_traffic

#: EDN(16,4,4,l) has (16/4)^l * 4 inputs: l = 4, 5, 6 -> 1K, 4K, 16K.
SIZES = {1_024: 4, 4_096: 5, 16_384: 6}
CYCLES = 200
SEED = 0
REPEATS = 3
SPEEDUP_FLOOR = 5.0  # acceptance criterion, enforced at N = 4096
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_batched_routing.json"

MATRIX_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_backend_matrix.json"
#: Cycle budgets per backend: the array engines amortize, the per-message
#: reference engine costs ~10^4 slower per cycle at N=16K.
MATRIX_CYCLES = {"batched": 200, "vectorized": 200, "reference": 2}

WORKLOAD_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_workload_matrix.json"
WORKLOAD_CYCLES = 200

BASELINE_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_baseline_matrix.json"
#: The compiled delta-family baselines timed by --baseline-matrix.
BASELINE_TOPOLOGIES = ("delta:{n},4", "omega:{n}", "dilated:{n},4,2")
BASELINE_SIZES = (1_024, 4_096)
BASELINE_CYCLES = 100
#: Compiled-vs-loop speedup floor asserted at N = 4096 (merge criterion).
BASELINE_SPEEDUP_FLOOR = 3.0

FAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_fault_matrix.json"
#: All four stage-graph families route faulted fabrics on the compiled
#: kernels; EDN(16,4,4,l) reaches 1K/4K inputs at l = 4/5.
FAULT_TOPOLOGIES = ("edn:16,4,4,{l}", "delta:{n},4", "omega:{n}", "dilated:{n},4,2")
FAULT_SIZES = {1_024: 4, 4_096: 5}
FAULT_RATE = 0.01
FAULT_SEED = 7
FAULT_CYCLES = 100
#: Cycle budget of the per-message reference engine (Python, per message).
FAULT_REFERENCE_CYCLES = 2
#: Faulted Monte-Carlo speedup floor vs the per-message fault reference,
#: asserted at N = 4096 (merge criterion of the fault-lowering PR).
FAULT_SPEEDUP_FLOOR = 10.0

SERVE_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_serve.json"
#: Worker counts swept by the serve scaling phase (fresh server each).
SERVE_SCALING_WORKERS = (1, 2, 4)
#: Unique cells per scaling run (seeds 0..N-1 of one EDN topology).
SERVE_SCALING_CELLS = 64
SERVE_SCALING_CYCLES = 200
#: 1 -> 4 worker speedup floor, asserted when the host has >= 4 cores
#: (worker processes cannot scale past the physical core count).
SERVE_SCALING_FLOOR = 3.0
#: Concurrent clients x cells each in the dedupe/throughput phase; the
#: total submitted stream must clear SERVE_MIN_CELLS.
SERVE_CLIENTS = 4
SERVE_CELLS_PER_CLIENT = 300
SERVE_MIN_CELLS = 1_000
#: Server-reported dedupe-rate floor for the overlapping client streams
#: (4 identical grids -> 3/4 of submissions are dupes; floor at 1/2).
SERVE_DEDUPE_FLOOR = 0.5
#: Cells sampled for the service-vs-inline bit-identity check.
SERVE_IDENTITY_SAMPLE = 5

SATURATION_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_saturation.json"
#: EDN(16,4,4,5) puts the buffered comparison at N = 4096 terminals.
SATURATION_STAGES = 5
SATURATION_DEPTH = 2
#: Cycle budget of the timed buffered runs (the legacy deque engine pays
#: ~50 ms/cycle at N = 4096 — it walks every FIFO in Python).
SATURATION_CYCLES = 40
SATURATION_WARMUP = 10
#: Compiled-vs-legacy-deque speedup floor asserted at N = 4096 (the
#: merge criterion of the buffered stage-graph PR).
SATURATION_SPEEDUP_FLOOR = 5.0
#: Knee curves are swept at N = 64 (EDN(16,4,4,2) and kin) where the
#: full rate ladder stays cheap.
SATURATION_KNEE_CYCLES = 200
SATURATION_KNEE_WARMUP = 50

FAULT_BUFFERED_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_fault_buffered.json"
#: EDN(16,4,4,l) reaches 1K/4K inputs at l = 4/5 for the faulty-buffered
#: comparison; depth and cycle budget mirror --saturation.
FAULT_BUFFERED_SIZES = {1_024: 4, 4_096: 5}
FAULT_BUFFERED_DEPTH = 2
#: warmup=0 so the whole-run conservation identity
#: (injected == delivered + in_flight + dropped) is checked exactly.
FAULT_BUFFERED_CYCLES = 50
#: Fault masks ride the same compiled FIFO kernels as pristine plans, so
#: a faulted buffered run may cost at most this multiple of the
#: fault-free run at N = 4096 (merge criterion of the faulty-buffered
#: PR: damage must not fall off the fast path).
FAULT_BUFFERED_OVERHEAD_CEILING = 1.5

PLAN_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_plan_cache.json"
#: Fixed-budget cycles per repeated call in the plan-cache comparison —
#: sized like an adaptive refinement probe, the regime repeated-call
#: sweeps actually run in (setup cost matters at this scale).
PLAN_CALL_CYCLES = 8
#: Best-of repetitions for the plan-cache benchmark (short calls need
#: more samples for a stable best).
PLAN_REPEATS = 9
#: Warm-call speedup floor asserted by --plan-cache (merge criterion).
PLAN_SPEEDUP_FLOOR = 1.5
#: Relative half-width target of the matched-precision adaptive sweep.
PLAN_SWEEP_REL_ERR = 0.005
#: Cycle-savings floor of adaptive vs fixed budgeting at equal CI width.
PLAN_SAVINGS_FLOOR = 0.30
#: End-to-end sweep speedup floor (plan cache + adaptive, warm vs seed).
PLAN_SWEEP_SPEEDUP_FLOOR = 2.0

NATIVE_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_native_kernel.json"
#: delta(N,4) at N = 4^l terminals: the counts-only Monte-Carlo hot path.
NATIVE_SIZES = (1_024, 4_096, 16_384)
#: Batched cycles per route_batch_counts call in the per-cycle phase.
NATIVE_BATCH = 16
#: Cycle budget of the end-to-end matched-precision sweep.
NATIVE_CYCLES = 64
#: native-vs-batched speedup floor at N = 16384, asserted when an
#: accelerated tier is running and the host has >= 4 cores (the merge
#: criterion; single-core hosts record the measured speedup unasserted).
NATIVE_SPEEDUP_FLOOR = 3.0


def _best_of(repeats: int, fn) -> tuple[float, object]:
    best, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def run(output: Path = OUTPUT) -> dict:
    results = []
    for n_inputs, stages in SIZES.items():
        params = EDNParams(16, 4, 4, stages)
        assert params.num_inputs == n_inputs
        traffic = UniformTraffic(n_inputs, n_inputs, 1.0)
        per_cycle_s, per_cycle = _best_of(
            REPEATS,
            lambda: measure_acceptance(
                VectorizedEDN(params), traffic, cycles=CYCLES, seed=SEED, batch=1
            ),
        )
        batched_engine = BatchedEDN(params)
        batched_s, batched = _best_of(
            REPEATS,
            lambda: measure_acceptance(
                batched_engine, traffic, cycles=CYCLES, seed=SEED
            ),
        )
        entry = {
            "network": str(params),
            "n_inputs": n_inputs,
            "cycles": CYCLES,
            "per_cycle_seconds": round(per_cycle_s, 4),
            "batched_seconds": round(batched_s, 4),
            "speedup": round(per_cycle_s / batched_s, 2),
            "chunk": batched_engine.preferred_batch(),
            "pa_per_cycle": round(per_cycle.point, 6),
            "pa_batched": round(batched.point, 6),
        }
        results.append(entry)
        print(
            f"N={n_inputs:>6}: per-cycle {per_cycle_s:.3f}s  "
            f"batched {batched_s:.3f}s  speedup {entry['speedup']:.1f}x"
        )

    report = {
        "benchmark": "batched_routing",
        "workload": f"measure_acceptance, uniform traffic r=1.0, {CYCLES} cycles, seed {SEED}",
        "engines": {
            "per_cycle": "VectorizedEDN via measure_acceptance(batch=1)",
            "batched": "BatchedEDN via measure_acceptance(batch=auto)",
        },
        "host": {
            "machine": platform.machine(),
            "python": platform.python_version(),
        },
        "results": results,
    }
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {output}")
    return report


def run_backend_matrix(output: Path = MATRIX_OUTPUT) -> dict:
    """Time every registered backend of the benchmark EDNs; write JSON.

    Each (network, backend) cell times ``measure_acceptance`` under the
    backend's cycle budget, best of :data:`REPEATS` (the default mode's
    noise-suppression methodology); ``seconds_per_cycle`` is the
    comparable figure, ``seconds`` the recorded best wall-clock.
    """
    results = []
    for n_inputs, stages in SIZES.items():
        spec = NetworkSpec.edn(16, 4, 4, stages)
        assert spec.n_inputs == n_inputs
        traffic = UniformTraffic(n_inputs, n_inputs, 1.0)
        for backend in available_backends(spec):
            cycles = MATRIX_CYCLES.get(backend, CYCLES)
            router = build_router(spec, backend)
            elapsed, measurement = _best_of(
                REPEATS,
                lambda: measure_acceptance(router, traffic, cycles=cycles, seed=SEED),
            )
            entry = {
                "network": str(spec.edn_params),
                "n_inputs": n_inputs,
                "backend": backend,
                "cycles": cycles,
                "seconds": round(elapsed, 4),
                "seconds_per_cycle": round(elapsed / cycles, 6),
                "pa": round(measurement.point, 6),
            }
            results.append(entry)
            print(
                f"N={n_inputs:>6} {backend:>10}: {elapsed:.3f}s over "
                f"{cycles} cycles ({entry['seconds_per_cycle']:.6f} s/cycle)"
            )
    report = {
        "benchmark": "backend_matrix",
        "workload": "measure_acceptance, uniform traffic r=1.0, seed 0",
        "host": {
            "machine": platform.machine(),
            "python": platform.python_version(),
        },
        "results": results,
    }
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {output}")
    return report


def run_workload_matrix(output: Path = WORKLOAD_OUTPUT) -> dict:
    """Time the topology x traffic grid on the batched backend; write JSON.

    Reuses the grid of :mod:`repro.experiments.workload_matrix` so the
    recorded numbers describe the registered experiment.  Each cell
    asserts the fast-path contract this subsystem was merged under:
    ``auto`` resolves to a natively batched router, and the workload's
    ``generate_batch`` is an override of the vectorized kind (never the
    base class's per-cycle stacking loop).
    """
    from repro.experiments.workload_matrix import TOPOLOGIES, TRAFFIC

    results = []
    for topology in TOPOLOGIES:
        spec = NetworkSpec.parse(topology)
        backend = resolve_backend(spec, "auto")
        assert backend.batched, f"auto gave {spec} the non-batched {backend.name}"
        router = backend.builder(spec)
        for traffic_text in TRAFFIC:
            generator = make_traffic(traffic_text, router.n_inputs, router.n_outputs)
            assert (
                type(generator).generate_batch is not TrafficGenerator.generate_batch
            ), f"{traffic_text} fell back to the per-cycle generate loop"
            elapsed, measurement = _best_of(
                REPEATS,
                lambda: measure_acceptance(
                    router, generator, cycles=WORKLOAD_CYCLES, seed=SEED
                ),
            )
            entry = {
                "topology": spec.label,
                "traffic": traffic_text,
                "backend": backend.name,
                "generator": type(generator).__name__,
                "cycles": WORKLOAD_CYCLES,
                "seconds": round(elapsed, 4),
                "seconds_per_cycle": round(elapsed / WORKLOAD_CYCLES, 6),
                "pa": round(measurement.point, 6),
            }
            results.append(entry)
            print(
                f"{spec.label:>13} x {traffic_text:<36}: {elapsed:.4f}s "
                f"over {WORKLOAD_CYCLES} cycles  PA={entry['pa']:.4f}"
            )
    report = {
        "benchmark": "workload_matrix",
        "workload": "measure_acceptance over the repro.experiments.workload_matrix grid, seed 0",
        "fast_path": (
            "asserted per cell: natively batched router under backend=auto, "
            "vectorized generate_batch on every built-in traffic model"
        ),
        "host": {
            "machine": platform.machine(),
            "python": platform.python_version(),
        },
        "results": results,
    }
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {output}")
    return report


def run_baseline_matrix(output: Path = BASELINE_OUTPUT) -> tuple[dict, list[str]]:
    """Compiled delta-family baselines vs the per-cycle loop path; write JSON.

    For every baseline topology (``delta``/``omega``/``dilated``) at
    :data:`BASELINE_SIZES` terminals, time ``measure_acceptance`` through
    the ``batched`` backend (the compiled stage-graph kernels) and the
    ``vectorized`` backend (the sort-based per-cycle interpreter behind
    ``_BatchByLoop`` — exactly the path every baseline routed through
    before the stage-graph refactor), under identical ``(seed, cycles)``.
    Label priority is deterministic, so both paths must report
    *bit-identical* acceptance counts — asserted per cell — and the
    compiled path must beat the loop path by at least
    :data:`BASELINE_SPEEDUP_FLOOR` x at ``N = 4096`` (the merge
    criterion).

    Returns ``(report, failures)``.
    """
    results = []
    failures: list[str] = []
    for n_inputs in BASELINE_SIZES:
        for template in BASELINE_TOPOLOGIES:
            text = template.format(n=n_inputs)
            spec = NetworkSpec.parse(text)
            assert spec.n_inputs == n_inputs
            traffic = UniformTraffic(spec.n_inputs, spec.n_outputs, 1.0)
            compiled = build_router(spec, "batched")
            loop = build_router(spec, "vectorized")
            compiled_s, compiled_m = _best_of(
                REPEATS,
                lambda: measure_acceptance(
                    compiled, traffic, cycles=BASELINE_CYCLES, seed=SEED
                ),
            )
            loop_s, loop_m = _best_of(
                REPEATS,
                lambda: measure_acceptance(
                    loop, traffic, cycles=BASELINE_CYCLES, seed=SEED
                ),
            )
            identical = (
                compiled_m.offered == loop_m.offered
                and compiled_m.delivered == loop_m.delivered
                and compiled_m.blocked_by_stage == loop_m.blocked_by_stage
            )
            if not identical:
                failures.append(f"{text}: compiled and loop counts diverge")
            speedup = loop_s / compiled_s
            entry = {
                "topology": spec.label,
                "n_inputs": n_inputs,
                "cycles": BASELINE_CYCLES,
                "compiled_seconds": round(compiled_s, 4),
                "loop_seconds": round(loop_s, 4),
                "speedup": round(speedup, 2),
                "pa": round(compiled_m.point, 6),
                "counts_bit_identical": identical,
            }
            results.append(entry)
            print(
                f"N={n_inputs:>6} {spec.label:<16}: compiled {compiled_s:.3f}s  "
                f"loop {loop_s:.3f}s  speedup {speedup:.1f}x  "
                f"identical={identical}"
            )
            if n_inputs == 4_096 and speedup < BASELINE_SPEEDUP_FLOOR:
                failures.append(
                    f"{text}: speedup {speedup:.1f}x below the "
                    f"{BASELINE_SPEEDUP_FLOOR:.0f}x floor"
                )
    report = {
        "benchmark": "baseline_matrix",
        "workload": (
            f"measure_acceptance, uniform traffic r=1.0, {BASELINE_CYCLES} "
            f"cycles, seed {SEED}"
        ),
        "engines": {
            "compiled": "CompiledStageRouter via backend=batched (plan-cached stage-graph kernels)",
            "loop": "StageGraphReference via backend=vectorized (_BatchByLoop per-cycle path)",
        },
        "floor": {
            "speedup_at_4096": BASELINE_SPEEDUP_FLOOR,
            "counts": "bit-identical per cell",
        },
        "host": {
            "machine": platform.machine(),
            "python": platform.python_version(),
        },
        "results": results,
    }
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {output}")
    return report, failures


def run_fault_matrix(output: Path = FAULT_OUTPUT) -> tuple[dict, list[str]]:
    """Faulted Monte-Carlo: compiled masked plans vs the references; write JSON.

    Every family in :data:`FAULT_TOPOLOGIES` at :data:`FAULT_SIZES`
    terminals gets a seeded ~:data:`FAULT_RATE` wire-fault pattern drawn
    on its stage graph, then times ``measure_acceptance`` through the
    ``batched`` backend (fault masks lowered into the compiled
    :class:`~repro.sim.plan.StagePlan`) and the ``vectorized`` backend
    (:class:`~repro.sim.stagegraph.StageGraphReference`, the per-cycle
    loop path) under identical ``(seed, cycles)``; acceptance counts must
    be *bit-identical* per cell.  EDN cells additionally route the same
    faulted fabric through the ``reference`` backend — the per-message
    :class:`~repro.core.faults.FaultyEDNetwork` grant semantics, under a
    reduced cycle budget — asserting bit-identical counts at matched
    cycles and a per-cycle speedup of at least
    :data:`FAULT_SPEEDUP_FLOOR` x at ``N = 4096`` (the merge criterion
    of the fault-lowering PR).

    Returns ``(report, failures)``.
    """
    from dataclasses import replace

    from repro.core.faults import random_graph_faults
    from repro.sim.rng import make_rng

    results = []
    failures: list[str] = []
    for n_inputs, edn_stages in FAULT_SIZES.items():
        for template in FAULT_TOPOLOGIES:
            text = template.format(n=n_inputs, l=edn_stages)
            pristine = NetworkSpec.parse(text)
            assert pristine.n_inputs == n_inputs
            faults = random_graph_faults(
                pristine.stage_graph(), FAULT_RATE, make_rng(FAULT_SEED)
            ).canonical()
            spec = replace(pristine, faults=faults)
            traffic = UniformTraffic(spec.n_inputs, spec.n_outputs, 1.0)
            compiled = build_router(spec, "batched")
            loop = build_router(spec, "vectorized")
            compiled_s, compiled_m = _best_of(
                REPEATS,
                lambda: measure_acceptance(
                    compiled, traffic, cycles=FAULT_CYCLES, seed=SEED
                ),
            )
            loop_s, loop_m = _best_of(
                REPEATS,
                lambda: measure_acceptance(
                    loop, traffic, cycles=FAULT_CYCLES, seed=SEED
                ),
            )
            identical = (
                compiled_m.offered == loop_m.offered
                and compiled_m.delivered == loop_m.delivered
                and compiled_m.blocked_by_stage == loop_m.blocked_by_stage
            )
            if not identical:
                failures.append(f"{text}: compiled and loop counts diverge")
            entry = {
                "topology": spec.label,
                "n_inputs": n_inputs,
                "n_faults": len(faults),
                "cycles": FAULT_CYCLES,
                "compiled_seconds": round(compiled_s, 4),
                "loop_seconds": round(loop_s, 4),
                "speedup_vs_loop": round(loop_s / compiled_s, 2),
                "pa": round(compiled_m.point, 6),
                "counts_bit_identical": identical,
            }
            line = (
                f"N={n_inputs:>6} {spec.label:<16} ({len(faults):>3} faults): "
                f"compiled {compiled_s:.3f}s  loop {loop_s:.3f}s  "
                f"{entry['speedup_vs_loop']:.1f}x vs loop"
            )
            if spec.kind == "edn":
                # The per-message grant-semantics reference exists for
                # EDN only; time it per cycle under a budget it can pay.
                reference = build_router(spec, "reference")
                reference_s, reference_m = _best_of(
                    REPEATS,
                    lambda: measure_acceptance(
                        reference, traffic, cycles=FAULT_REFERENCE_CYCLES, seed=SEED
                    ),
                )
                matched = measure_acceptance(
                    compiled, traffic, cycles=FAULT_REFERENCE_CYCLES, seed=SEED
                )
                reference_identical = (
                    matched.offered == reference_m.offered
                    and matched.delivered == reference_m.delivered
                    and matched.blocked_by_stage == reference_m.blocked_by_stage
                )
                if not reference_identical:
                    failures.append(
                        f"{text}: compiled and per-message reference counts diverge"
                    )
                speedup = (reference_s / FAULT_REFERENCE_CYCLES) / (
                    compiled_s / FAULT_CYCLES
                )
                entry.update(
                    {
                        "reference_cycles": FAULT_REFERENCE_CYCLES,
                        "reference_seconds": round(reference_s, 4),
                        "speedup_vs_reference": round(speedup, 1),
                        "reference_counts_bit_identical": reference_identical,
                    }
                )
                line += f"  {speedup:.0f}x vs per-message reference"
                if n_inputs == 4_096 and speedup < FAULT_SPEEDUP_FLOOR:
                    failures.append(
                        f"{text}: faulted speedup {speedup:.1f}x below the "
                        f"{FAULT_SPEEDUP_FLOOR:.0f}x floor"
                    )
            results.append(entry)
            print(line)
    report = {
        "benchmark": "fault_matrix",
        "workload": (
            f"measure_acceptance, uniform traffic r=1.0, seed {SEED}, "
            f"~{FAULT_RATE:g} wire faults drawn at seed {FAULT_SEED} per topology"
        ),
        "engines": {
            "compiled": "CompiledStageRouter via backend=batched (fault masks lowered into the plan)",
            "loop": "StageGraphReference via backend=vectorized (per-cycle loop path)",
            "reference": "FaultyEDNetwork via backend=reference (per-message grant semantics, EDN only)",
        },
        "floor": {
            "speedup_vs_reference_at_4096": FAULT_SPEEDUP_FLOOR,
            "counts": "bit-identical per cell (loop always, reference on EDN)",
        },
        "host": {
            "machine": platform.machine(),
            "python": platform.python_version(),
        },
        "results": results,
    }
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {output}")
    return report, failures


def run_fault_buffered(output: Path = FAULT_BUFFERED_OUTPUT) -> tuple[dict, list[str]]:
    """Faulty vs fault-free buffered stepping on the compiled kernels.

    For EDN(16,4,4,l) at :data:`FAULT_BUFFERED_SIZES` terminals, times
    ``measure_buffered`` at depth :data:`FAULT_BUFFERED_DEPTH` under full
    offered load twice — once pristine, once with a seeded
    ~:data:`FAULT_RATE` wire-fault pattern lowered into the same plan —
    under identical ``(seed, cycles)``.  Asserts, per cell: the
    whole-run conservation identity ``injected == delivered + in_flight
    + dropped``, zero drops for static damage (dead wires back-pressure,
    they do not eat), engine agreement (compiled vs the per-packet
    ``BufferedStageReference`` at the small size), and a faulted/pristine
    wall-clock ratio of at most
    :data:`FAULT_BUFFERED_OVERHEAD_CEILING` x at ``N = 4096`` (the merge
    criterion: damaged fabrics must not fall off the buffered fast
    path).  Also exercises ``apply_faults`` drop accounting mid-run.

    Returns ``(report, failures)``.
    """
    from repro.core.faults import random_graph_faults
    from repro.sim.batched import CompiledStageRouter
    from repro.sim.buffered import measure_buffered
    from repro.sim.rng import make_rng
    from repro.sim.stagegraph import edn_graph

    results = []
    failures: list[str] = []
    for n_inputs, edn_stages in FAULT_BUFFERED_SIZES.items():
        params = EDNParams(16, 4, 4, edn_stages)
        graph = edn_graph(params)
        faults = random_graph_faults(graph, FAULT_RATE, make_rng(FAULT_SEED)).canonical()
        kw = dict(
            traffic="uniform:1",
            depth=FAULT_BUFFERED_DEPTH,
            cycles=FAULT_BUFFERED_CYCLES,
            warmup=0,
            seed=SEED,
        )
        pristine_s, pristine_m = _best_of(
            REPEATS, lambda: measure_buffered(graph, **kw)
        )
        faulted_s, faulted_m = _best_of(
            REPEATS, lambda: measure_buffered(graph, faults=faults, **kw)
        )
        conserved = True
        for label, m in (("pristine", pristine_m), ("faulted", faulted_m)):
            if m.injected != m.delivered + m.in_flight + m.dropped:
                failures.append(f"N={n_inputs} {label}: conservation violated")
                conserved = False
        if faulted_m.dropped != 0:
            failures.append(
                f"N={n_inputs}: static faults dropped {faulted_m.dropped} packets "
                "(dead wires must back-pressure, not eat)"
            )
        overhead = faulted_s / pristine_s
        entry = {
            "topology": f"edn:16,4,4,{edn_stages}",
            "n_inputs": n_inputs,
            "n_faults": len(faults),
            "buffer_depth": FAULT_BUFFERED_DEPTH,
            "cycles": FAULT_BUFFERED_CYCLES,
            "pristine_seconds": round(pristine_s, 4),
            "faulted_seconds": round(faulted_s, 4),
            "fault_overhead": round(overhead, 3),
            "pristine_throughput": round(pristine_m.throughput, 6),
            "faulted_throughput": round(faulted_m.throughput, 6),
            "conserved": conserved,
        }
        results.append(entry)
        print(
            f"N={n_inputs:>6} edn:16,4,4,{edn_stages} ({len(faults):>3} faults, "
            f"depth {FAULT_BUFFERED_DEPTH}): pristine {pristine_s:.3f}s  "
            f"faulted {faulted_s:.3f}s  {overhead:.2f}x overhead"
        )
        if n_inputs == 4_096 and overhead > FAULT_BUFFERED_OVERHEAD_CEILING:
            failures.append(
                f"edn:16,4,4,{edn_stages}: faulted buffered overhead "
                f"{overhead:.2f}x above the "
                f"{FAULT_BUFFERED_OVERHEAD_CEILING:.1f}x ceiling"
            )
    # Engine agreement at the small size: the compiled faulted FIFO
    # kernels must match the per-packet reference measurement exactly.
    small = edn_graph(EDNParams(16, 4, 4, FAULT_BUFFERED_SIZES[1_024]))
    small_faults = random_graph_faults(small, FAULT_RATE, make_rng(FAULT_SEED)).canonical()
    small_kw = dict(
        traffic="uniform:1", depth=FAULT_BUFFERED_DEPTH, cycles=10, warmup=0,
        seed=SEED, faults=small_faults,
    )
    engines_agree = measure_buffered(small, engine="compiled", **small_kw) == (
        measure_buffered(small, engine="reference", **small_kw)
    )
    if not engines_agree:
        failures.append("compiled and per-packet buffered engines diverge under faults")
    # Mid-run damage drops stranded packets with exact accounting.
    router = CompiledStageRouter(
        small, buffer_depth=FAULT_BUFFERED_DEPTH, faults=()
    )
    rng = make_rng(SEED)
    demands = make_rng(SEED + 977).integers(
        0, small.n_outputs, size=(20, small.n_inputs)
    )
    injected = delivered = 0
    for cycle in range(20):
        outcome = router.step(demands[cycle], rng)
        injected += outcome.injected
        delivered += outcome.delivered
    dropped = router.apply_faults(small_faults)
    drops_conserved = (
        dropped == router.dropped_packets
        and injected == delivered + router.total_occupancy() + router.dropped_packets
    )
    if not drops_conserved:
        failures.append("apply_faults drop accounting broke conservation")
    report = {
        "benchmark": "fault_buffered",
        "workload": (
            f"measure_buffered, uniform traffic r=1.0, depth "
            f"{FAULT_BUFFERED_DEPTH}, seed {SEED}, ~{FAULT_RATE:g} wire "
            f"faults drawn at seed {FAULT_SEED}"
        ),
        "floor": {
            "fault_overhead_ceiling_at_4096": FAULT_BUFFERED_OVERHEAD_CEILING,
            "conservation": "injected == delivered + in_flight + dropped, every run",
            "static_faults": "never drop (back-pressure only)",
        },
        "engines_agree_under_faults": engines_agree,
        "mid_run_drop_accounting_conserved": drops_conserved,
        "host": {
            "machine": platform.machine(),
            "python": platform.python_version(),
        },
        "results": results,
    }
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {output}")
    return report, failures


def run_plan_cache(output: Path = PLAN_OUTPUT) -> tuple[dict, list[str]]:
    """Measure what plan compilation + adaptive stopping buy; write JSON.

    Three honestly-separated comparisons at ``N = 16384``
    (``EDN(16,4,4,6)``, uniform traffic at full load):

    * **repeated fixed-budget calls** — ``measure_acceptance`` called
      repeatedly at :data:`PLAN_CALL_CYCLES` cycles per call.  ``seed_path``
      builds a plan-less engine per call (exactly the pre-plan behavior:
      per-call table recompute, per-call scratch allocation, generic
      kernel); ``cold`` compiles a plan per call (cache cleared each
      time); ``warm`` hits the plan cache.  Acceptance must be
      bit-identical across all three.
    * **matched-precision sweep** — the family sweep ``EDN(16,4,4,l)``,
      ``l`` in {4, 5, 6}, at rates {1.0, 0.75}, measured to equal
      confidence-interval width two ways: fixed budgeting (every cell gets
      the cycle budget the *worst* cell needs to reach
      :data:`PLAN_SWEEP_REL_ERR`, on the seed path — a priori budgeting
      cannot size per cell) versus warm adaptive stopping (each cell stops
      at its own convergence).  Both designs guarantee half-width <=
      rel_err * PA in every cell; the recorded savings are the cycles and
      wall-clock the adaptive design does not spend.

    Returns ``(report, failures)``.
    """
    from repro.sim.plan import clear_plan_cache, plan_cache_info

    params = EDNParams(16, 4, 4, 6)
    spec = NetworkSpec.edn(16, 4, 4, 6)
    assert spec.n_inputs == 16_384
    traffic = UniformTraffic(spec.n_inputs, spec.n_inputs, 1.0)

    # Warm numpy's dispatch on an unrelated small network so first-call
    # interpreter costs do not pollute the seed-path column.
    measure_acceptance(
        BatchedEDN(EDNParams(16, 4, 4, 2)),
        UniformTraffic(64, 64, 1.0),
        cycles=32,
        seed=0,
    )

    def _seed_call():
        engine = BatchedEDN(params, plan=None)
        return measure_acceptance(engine, traffic, cycles=PLAN_CALL_CYCLES, seed=SEED)

    def _cold_call():
        clear_plan_cache()
        router = build_router(spec, "batched")
        return measure_acceptance(router, traffic, cycles=PLAN_CALL_CYCLES, seed=SEED)

    def _warm_call():
        router = build_router(spec, "batched")
        return measure_acceptance(router, traffic, cycles=PLAN_CALL_CYCLES, seed=SEED)

    seed_s, seed_m = _best_of(PLAN_REPEATS, _seed_call)
    cold_s, cold_m = _best_of(PLAN_REPEATS, _cold_call)
    clear_plan_cache()
    _warm_call()  # prime the cache
    warm_s, warm_m = _best_of(PLAN_REPEATS, _warm_call)
    cache = plan_cache_info()
    assert seed_m.point == cold_m.point == warm_m.point, "plan changed routing"

    warm_vs_seed = seed_s / warm_s
    warm_vs_cold = cold_s / warm_s
    print(
        f"repeated {PLAN_CALL_CYCLES}-cycle calls @ N=16384: "
        f"seed-path {seed_s * 1000:.1f}ms  cold-compile {cold_s * 1000:.1f}ms  "
        f"warm {warm_s * 1000:.1f}ms  ({warm_vs_seed:.2f}x vs seed path)"
    )

    # ------------------------------------------------------------------
    # Matched-precision sweep: fixed budget sized for the worst cell vs
    # warm adaptive stopping, both guaranteeing half-width <= rel_err*PA.
    # ------------------------------------------------------------------
    cells = [
        (EDNParams(16, 4, 4, stages), rate)
        for stages in (4, 5, 6)
        for rate in (1.0, 0.75)
    ]
    budget_ceiling = 4096
    adaptive_cells = []
    adaptive_s = 0.0
    clear_plan_cache()
    for cell_params, rate in cells:
        cell_traffic = UniformTraffic(
            cell_params.num_inputs, cell_params.num_inputs, rate
        )

        def _adaptive_call():
            router = build_router(
                NetworkSpec.edn(*map(int, (cell_params.a, cell_params.b,
                                           cell_params.c, cell_params.l))),
                "batched",
            )
            return measure_acceptance(
                router,
                cell_traffic,
                cycles=budget_ceiling,
                seed=SEED,
                rel_err=PLAN_SWEEP_REL_ERR,
            )

        _adaptive_call()  # prime plan + workspace for this shape
        elapsed, measurement = _best_of(REPEATS, _adaptive_call)
        adaptive_s += elapsed
        assert measurement.converged, f"{cell_params} did not converge"
        adaptive_cells.append(
            {
                "network": str(cell_params),
                "n_inputs": cell_params.num_inputs,
                "rate": rate,
                "cycles": measurement.cycles,
                "seconds": round(elapsed, 4),
                "pa": round(measurement.point, 6),
                "rel_halfwidth": round(
                    measurement.acceptance.halfwidth / measurement.point, 6
                ),
            }
        )

    # A fixed design must hand EVERY cell the worst cell's budget.
    fixed_budget = max(cell["cycles"] for cell in adaptive_cells)
    fixed_cells = []
    fixed_s = 0.0
    for cell_params, rate in cells:
        cell_traffic = UniformTraffic(
            cell_params.num_inputs, cell_params.num_inputs, rate
        )

        def _fixed_call():
            engine = BatchedEDN(cell_params, plan=None)  # the seed path
            return measure_acceptance(
                engine, cell_traffic, cycles=fixed_budget, seed=SEED
            )

        elapsed, measurement = _best_of(REPEATS, _fixed_call)
        fixed_s += elapsed
        fixed_cells.append(
            {
                "network": str(cell_params),
                "n_inputs": cell_params.num_inputs,
                "rate": rate,
                "cycles": measurement.cycles,
                "seconds": round(elapsed, 4),
                "pa": round(measurement.point, 6),
                "rel_halfwidth": round(
                    measurement.acceptance.halfwidth / measurement.point, 6
                ),
            }
        )

    adaptive_cycles = sum(cell["cycles"] for cell in adaptive_cells)
    fixed_cycles = fixed_budget * len(cells)
    cycle_savings = 1.0 - adaptive_cycles / fixed_cycles
    sweep_speedup = fixed_s / adaptive_s
    print(
        f"matched-precision sweep (rel half-width <= {PLAN_SWEEP_REL_ERR:g}): "
        f"fixed {fixed_cycles} cycles / {fixed_s:.3f}s  adaptive "
        f"{adaptive_cycles} cycles / {adaptive_s:.3f}s  "
        f"(cycle savings {cycle_savings:.0%}, end-to-end {sweep_speedup:.2f}x)"
    )

    report = {
        "benchmark": "plan_cache",
        "workload": (
            "measure_acceptance, uniform traffic, seed 0; repeated calls at "
            "N=16384 plus the EDN(16,4,4,l) x rate matched-precision sweep"
        ),
        "modes": {
            "seed_path": "fresh plan-less engine per call (pre-plan behavior)",
            "cold": "plan compiled per call (cache cleared each call)",
            "warm": "plan-cache hit (shared tables + thread-local workspace)",
        },
        "host": {
            "machine": platform.machine(),
            "python": platform.python_version(),
        },
        "repeated_calls": {
            "network": str(params),
            "n_inputs": spec.n_inputs,
            "cycles_per_call": PLAN_CALL_CYCLES,
            "seed_path_seconds": round(seed_s, 4),
            "cold_seconds": round(cold_s, 4),
            "warm_seconds": round(warm_s, 4),
            "speedup_warm_vs_seed_path": round(warm_vs_seed, 2),
            "speedup_warm_vs_cold": round(warm_vs_cold, 2),
            "pa_bit_identical": True,
            "pa": round(warm_m.point, 6),
            "plan_cache": cache,
        },
        "matched_precision_sweep": {
            "target_rel_halfwidth": PLAN_SWEEP_REL_ERR,
            "confidence": 0.95,
            "fixed_budget_per_cell": fixed_budget,
            "fixed_total_cycles": fixed_cycles,
            "adaptive_total_cycles": adaptive_cycles,
            "cycle_savings": round(cycle_savings, 4),
            "fixed_seconds": round(fixed_s, 4),
            "adaptive_seconds": round(adaptive_s, 4),
            "end_to_end_speedup": round(sweep_speedup, 2),
            "fixed_cells": fixed_cells,
            "adaptive_cells": adaptive_cells,
        },
    }
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {output}")

    failures = []
    if warm_vs_seed < PLAN_SPEEDUP_FLOOR:
        failures.append(
            f"warm-call speedup {warm_vs_seed:.2f}x below the "
            f"{PLAN_SPEEDUP_FLOOR:.1f}x floor"
        )
    if cycle_savings < PLAN_SAVINGS_FLOOR:
        failures.append(
            f"adaptive cycle savings {cycle_savings:.0%} below the "
            f"{PLAN_SAVINGS_FLOOR:.0%} floor"
        )
    if sweep_speedup < PLAN_SWEEP_SPEEDUP_FLOOR:
        failures.append(
            f"end-to-end sweep speedup {sweep_speedup:.2f}x below the "
            f"{PLAN_SWEEP_SPEEDUP_FLOOR:.1f}x floor"
        )
    return report, failures


def run_saturation(output: Path = SATURATION_OUTPUT) -> tuple[dict, list[str]]:
    """Buffered stepping: compiled kernels vs the legacy deque engine; write JSON.

    Times one buffered run of ``EDN(16,4,4,5)`` (N = 4096) at full
    offered load, depth :data:`SATURATION_DEPTH`, through the compiled
    buffered stage-graph path (:func:`repro.sim.buffered.measure_buffered`)
    and the original per-packet deque engine
    (:class:`repro.ext.buffered.DequeBufferedEDN`), under identical
    ``(rate, cycles, warmup, seed)``.  The engines share no code and
    consume randomness in different orders, so throughput is checked for
    statistical agreement (not bit-identity — that cross-check lives in
    ``tests/sim/test_buffered_core.py`` against
    :class:`~repro.sim.stagegraph.BufferedStageReference`).  Asserts the
    :data:`SATURATION_SPEEDUP_FLOOR` x per-cycle speedup at N = 4096
    (the merge criterion of the buffered stage-graph PR) and records the
    ``saturation`` experiment's detected knees at N = 64 so the bench
    file documents the physics alongside the wall-clock.

    Returns ``(report, failures)``.
    """
    import warnings as _warnings

    from repro.sim.buffered import measure_buffered
    from repro.sim.stagegraph import edn_graph

    with _warnings.catch_warnings():
        _warnings.simplefilter("ignore", DeprecationWarning)
        from repro.ext.buffered import DequeBufferedEDN

    failures: list[str] = []
    params = EDNParams(16, 4, 4, SATURATION_STAGES)
    n_inputs = params.num_inputs
    assert n_inputs == 4_096
    graph = edn_graph(params)

    compiled_s, compiled_m = _best_of(
        REPEATS,
        lambda: measure_buffered(
            graph,
            traffic="uniform:1",
            depth=SATURATION_DEPTH,
            cycles=SATURATION_CYCLES,
            warmup=SATURATION_WARMUP,
            seed=SEED,
        ),
    )
    legacy_s, legacy_m = _best_of(
        2,  # ~50 ms/cycle in Python; two repeats bound the noise
        lambda: DequeBufferedEDN(params, depth=SATURATION_DEPTH).run(
            rate=1.0,
            cycles=SATURATION_CYCLES,
            warmup=SATURATION_WARMUP,
            seed=SEED,
        ),
    )
    total_cycles = SATURATION_CYCLES + SATURATION_WARMUP
    speedup = legacy_s / compiled_s
    agree = abs(compiled_m.throughput - legacy_m.throughput) < 0.05
    if not agree:
        failures.append(
            f"compiled throughput {compiled_m.throughput:.4f} vs legacy "
            f"{legacy_m.throughput:.4f}: outside the 0.05 agreement band"
        )
    if speedup < SATURATION_SPEEDUP_FLOOR:
        failures.append(
            f"buffered speedup {speedup:.1f}x below the "
            f"{SATURATION_SPEEDUP_FLOOR:.0f}x floor"
        )
    print(
        f"N={n_inputs:>6} buffered depth {SATURATION_DEPTH}: compiled "
        f"{compiled_s:.3f}s  legacy deque {legacy_s:.3f}s  speedup "
        f"{speedup:.1f}x  thr {compiled_m.throughput:.4f}/{legacy_m.throughput:.4f}"
    )

    # Saturation knees at N = 64: the physics the wall-clock buys.
    from repro.experiments.saturation import run as run_saturation_experiment

    knees = run_saturation_experiment(
        workloads=("uniform",),
        cycles=SATURATION_KNEE_CYCLES,
        warmup=SATURATION_KNEE_WARMUP,
        seed=SEED,
    ).tables["saturation knees"][1]
    knee_rows = [
        {
            "family": family,
            "workload": workload,
            "knee_rate": round(knee, 4),
            "throughput_at_knee": round(thr, 4),
        }
        for family, workload, knee, thr in knees
    ]
    for row in knee_rows:
        print(
            f"knee {row['family']:<8} {row['workload']:<10} "
            f"rate {row['knee_rate']:.2f}  thr {row['throughput_at_knee']:.4f}"
        )

    report = {
        "benchmark": "saturation",
        "workload": (
            f"buffered stepping, uniform traffic r=1.0, depth "
            f"{SATURATION_DEPTH}, {SATURATION_CYCLES} measured cycles after "
            f"{SATURATION_WARMUP} warmup, seed {SEED}"
        ),
        "engines": {
            "compiled": "CompiledStageRouter.step via measure_buffered (per-wire FIFO state on the compiled plan)",
            "legacy": "DequeBufferedEDN (per-packet Python deques, the pre-core engine)",
        },
        "floor": {
            "speedup_at_4096": SATURATION_SPEEDUP_FLOOR,
            "throughput_agreement": 0.05,
        },
        "host": {
            "machine": platform.machine(),
            "python": platform.python_version(),
        },
        "results": [
            {
                "network": str(params),
                "n_inputs": n_inputs,
                "depth": SATURATION_DEPTH,
                "cycles": SATURATION_CYCLES,
                "compiled_seconds": round(compiled_s, 4),
                "legacy_seconds": round(legacy_s, 4),
                "compiled_seconds_per_cycle": round(compiled_s / total_cycles, 6),
                "legacy_seconds_per_cycle": round(legacy_s / total_cycles, 6),
                "speedup": round(speedup, 2),
                "throughput_compiled": round(compiled_m.throughput, 6),
                "throughput_legacy": round(legacy_m.throughput, 6),
                "mean_latency_compiled": round(compiled_m.mean_latency, 4),
                "p99_latency_compiled": compiled_m.latency.p99,
                "throughput_agrees": agree,
            }
        ],
        "knees_at_64": {
            "cycles": SATURATION_KNEE_CYCLES,
            "results": knee_rows,
        },
    }
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {output}")
    return report, failures


def run_serve_matrix(output: Path = SERVE_OUTPUT) -> tuple[dict, list[str]]:
    """Throughput, scaling, and dedupe of the simulation service; write JSON.

    Four phases against real servers on ephemeral ports:

    * **scaling** — one client submits :data:`SERVE_SCALING_CELLS` unique
      cells to a fresh server at each worker count in
      :data:`SERVE_SCALING_WORKERS` (pool pre-forked by an off-the-clock
      warmup cell); records cells/sec and asserts the
      :data:`SERVE_SCALING_FLOOR` x speedup from 1 to 4 workers whenever
      the host has >= 4 cores.
    * **dedupe / sustained load** — :data:`SERVE_CLIENTS` concurrent
      clients each submit the same :data:`SERVE_CELLS_PER_CLIENT`-cell
      grid (rotated per client so the streams interleave on different
      cells) to one 4-worker server: >= :data:`SERVE_MIN_CELLS` cells
      through a single instance, each unique cell computed once and the
      rest answered from the result cache or coalesced in flight.
      Asserts the server-reported dedupe rate against
      :data:`SERVE_DEDUPE_FLOOR` and records per-worker plan-cache hit
      rates from the stats endpoint.
    * **streaming** — one slow-converging adaptive cell must surface
      partial results while it runs.
    * **bit-identity** — :data:`SERVE_IDENTITY_SAMPLE` cells of the
      dedupe grid are recomputed inline through ``measure_cell`` and must
      equal the service's answers exactly.

    Returns ``(report, failures)``.
    """
    import os
    import threading

    from repro.api.jobs import SweepCell, measure_cell
    from repro.api.spec import RunConfig
    from repro.serve.client import ServiceClient
    from repro.serve.server import start_server_thread

    cores = os.cpu_count() or 1
    failures: list[str] = []

    scaling_spec = NetworkSpec.edn(16, 4, 4, 4)
    scaling_cells = [
        SweepCell(scaling_spec, RunConfig(cycles=SERVE_SCALING_CYCLES, seed=seed))
        for seed in range(SERVE_SCALING_CELLS)
    ]
    warmup = [SweepCell(scaling_spec, RunConfig(cycles=8, seed=10_000))]

    scaling_rows = []
    walls: dict[int, float] = {}
    for workers in SERVE_SCALING_WORKERS:
        handle = start_server_thread(workers=workers)
        try:
            with ServiceClient(handle.address) as client:
                client.run(warmup)  # fork + prime the pool off the clock
                start = time.perf_counter()
                client.run(scaling_cells)
                wall = time.perf_counter() - start
                stats = client.status()
        finally:
            handle.stop()
        walls[workers] = wall
        row = {
            "workers": workers,
            "cells": len(scaling_cells),
            "seconds": round(wall, 4),
            "cells_per_second": round(len(scaling_cells) / wall, 2),
            "speedup_vs_1_worker": round(walls[SERVE_SCALING_WORKERS[0]] / wall, 2),
            "plan_cache_per_worker": stats["plan_cache"]["per_worker"],
        }
        scaling_rows.append(row)
        print(
            f"serve scaling: {workers} worker(s)  {wall:.3f}s  "
            f"{row['cells_per_second']:.1f} cells/s  "
            f"{row['speedup_vs_1_worker']:.2f}x vs 1 worker"
        )
    scaling_speedup = walls[SERVE_SCALING_WORKERS[0]] / walls[SERVE_SCALING_WORKERS[-1]]
    scaling_enforced = cores >= SERVE_SCALING_WORKERS[-1]
    if scaling_enforced and scaling_speedup < SERVE_SCALING_FLOOR:
        failures.append(
            f"serve 1->{SERVE_SCALING_WORKERS[-1]}-worker speedup "
            f"{scaling_speedup:.2f}x below the {SERVE_SCALING_FLOOR:.1f}x floor"
        )
    if not scaling_enforced:
        print(
            f"serve scaling floor not enforced: host has {cores} core(s), "
            f"needs >= {SERVE_SCALING_WORKERS[-1]}"
        )

    # ------------------------------------------------------------------
    # Dedupe / sustained load: concurrent clients, overlapping grids.
    # ------------------------------------------------------------------
    dedupe_grid = [
        SweepCell(NetworkSpec.parse(topology), RunConfig(
            cycles=SERVE_SCALING_CYCLES, seed=seed, traffic=traffic,
        ))
        for topology in ("edn:16,4,4,4", "delta:8,8,2")
        for traffic in ("uniform", "hotspot:0.1", "bitrev")
        for seed in range(SERVE_CELLS_PER_CLIENT // 6)
    ]
    assert len(dedupe_grid) == SERVE_CELLS_PER_CLIENT
    submitted_total = SERVE_CLIENTS * SERVE_CELLS_PER_CLIENT
    assert submitted_total >= SERVE_MIN_CELLS

    handle = start_server_thread(workers=SERVE_SCALING_WORKERS[-1])
    client_errors: list[str] = []
    try:
        with ServiceClient(handle.address) as client:
            client.run(warmup)
        barrier = threading.Barrier(SERVE_CLIENTS)

        def submit(rank: int) -> None:
            rotated = dedupe_grid[rank * 75:] + dedupe_grid[:rank * 75]
            try:
                with ServiceClient(handle.address) as client:
                    barrier.wait()
                    client.run(rotated)
            except Exception as exc:  # surfaced as a bench failure below
                client_errors.append(f"client {rank}: {exc}")

        threads = [
            threading.Thread(target=submit, args=(rank,))
            for rank in range(SERVE_CLIENTS)
        ]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - start
        with ServiceClient(handle.address) as client:
            stats = client.status()

            # Bit-identity spot check: every SERVE_IDENTITY_SAMPLE-th cell,
            # service answer (cache hit) vs a fresh inline computation.
            step = len(dedupe_grid) // SERVE_IDENTITY_SAMPLE
            sample = dedupe_grid[::step][:SERVE_IDENTITY_SAMPLE]
            served = client.run(sample)
        inline = [measure_cell(cell) for cell in sample]
        identical = served == inline
    finally:
        handle.stop()
    failures.extend(client_errors)
    if not identical:
        failures.append("service results diverge from inline measure_cell")
    dedupe_rate = stats["dedupe_rate"]
    if dedupe_rate < SERVE_DEDUPE_FLOOR:
        failures.append(
            f"serve dedupe rate {dedupe_rate:.2f} below the "
            f"{SERVE_DEDUPE_FLOOR:.2f} floor"
        )
    plan_hit_rates = {
        pid: round(info["hits"] / max(1, info["hits"] + info["misses"]), 4)
        for pid, info in stats["plan_cache"]["per_worker"].items()
    }
    print(
        f"serve dedupe: {SERVE_CLIENTS} clients x {SERVE_CELLS_PER_CLIENT} cells "
        f"= {submitted_total} submitted  {wall:.3f}s  "
        f"{submitted_total / wall:.1f} cells/s  dedupe {dedupe_rate:.2f}  "
        f"computed {stats['cells']['computed']}  identical={identical}"
    )

    # ------------------------------------------------------------------
    # Streaming: a slow-converging adaptive cell must emit partials.
    # ------------------------------------------------------------------
    partials: list[dict] = []
    handle = start_server_thread(workers=1)
    try:
        with ServiceClient(handle.address) as client:
            client.submit(
                [SweepCell(
                    NetworkSpec.edn(16, 4, 4, 2),
                    RunConfig(cycles=60_000, seed=0, batch=16, rel_err=0.002),
                )],
                on_partial=partials.append,
            )
    finally:
        handle.stop()
    if not partials:
        failures.append("adaptive cell streamed no partial results")
    print(f"serve streaming: {len(partials)} partial(s) from one adaptive cell")

    report = {
        "benchmark": "serve",
        "workload": (
            "SimulationServer on ephemeral TCP ports; measure_cell grids of "
            "EDN(16,4,4,4) and delta:8,8,2 cells, "
            f"{SERVE_SCALING_CYCLES} cycles, uniform/hotspot/bitrev traffic"
        ),
        "host": {
            "machine": platform.machine(),
            "python": platform.python_version(),
            "cores": cores,
        },
        "scaling": {
            "cells": len(scaling_cells),
            "results": scaling_rows,
            "speedup_1_to_4": round(scaling_speedup, 2),
            "floor": SERVE_SCALING_FLOOR,
            "floor_enforced": scaling_enforced,
        },
        "dedupe": {
            "clients": SERVE_CLIENTS,
            "cells_per_client": SERVE_CELLS_PER_CLIENT,
            "cells_submitted": submitted_total,
            "unique_cells": len(dedupe_grid),
            "seconds": round(wall, 4),
            "cells_per_second": round(submitted_total / wall, 2),
            "dedupe_rate": dedupe_rate,
            "floor": SERVE_DEDUPE_FLOOR,
            "cells": stats["cells"],
            "result_cache": stats["result_cache"],
            "plan_cache_hit_rate_per_worker": plan_hit_rates,
        },
        "streaming": {"partials_from_one_adaptive_cell": len(partials)},
        "bit_identity": {
            "sampled_cells": SERVE_IDENTITY_SAMPLE,
            "identical_to_inline": identical,
        },
    }
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {output}")
    return report, failures


def run_native_kernel(output: Path = NATIVE_OUTPUT) -> tuple[dict, list[str]]:
    """Native (JIT/compiled) kernel vs the batched NumPy kernels; write JSON.

    Two phases per size in :data:`NATIVE_SIZES` on ``delta(N, 4)``:

    * *per-cycle* — time ``route_batch_counts`` on a fixed full-load
      demand matrix (``NATIVE_BATCH`` cycles per call) through
      :class:`~repro.sim.batched.CompiledStageRouter` and
      :class:`~repro.sim.native.NativeStageRouter`, asserting the counts
      are bit-identical;
    * *end-to-end* — ``measure_acceptance`` through ``backend=batched``
      and ``backend=native`` under identical ``(seed, cycles)`` (matched
      precision by construction), asserting identical measurements.

    The :data:`NATIVE_SPEEDUP_FLOOR` x floor at ``N = 16384`` is enforced
    when an accelerated tier is running and the host has >= 4 cores; the
    measured speedup is recorded either way.  With no accelerated tier
    the native backend is the NumPy shim, which is recorded (tier null)
    and exempt from the floor.

    Returns ``(report, failures)``.
    """
    import os

    import numpy as np

    from repro.sim.batched import CompiledStageRouter
    from repro.sim.native import NativeStageRouter, available_tiers
    from repro.sim.rng import make_rng
    from repro.sim.stagegraph import delta_graph

    tiers = available_tiers()
    tier = tiers[0] if tiers else None
    cpu_count = os.cpu_count() or 1
    floor_enforced = bool(tiers) and cpu_count >= 4
    results = []
    failures: list[str] = []
    for n_inputs in NATIVE_SIZES:
        l = round(np.log(n_inputs) / np.log(4))
        graph = delta_graph(4, 4, l)
        assert graph.n_inputs == n_inputs
        batched = CompiledStageRouter(graph)
        native = NativeStageRouter(graph)
        dests = make_rng(SEED).integers(
            0, graph.n_outputs, size=(NATIVE_BATCH, graph.n_inputs)
        )
        batched_s, batched_c = _best_of(
            REPEATS * 2, lambda: batched.route_batch_counts(dests)
        )
        native_s, native_c = _best_of(
            REPEATS * 2, lambda: native.route_batch_counts(dests)
        )
        identical = (
            np.array_equal(
                batched_c.offered_per_cycle, native_c.offered_per_cycle
            )
            and np.array_equal(
                batched_c.delivered_per_cycle, native_c.delivered_per_cycle
            )
            and batched_c.blocked_by_stage == native_c.blocked_by_stage
        )
        if not identical:
            failures.append(f"delta:{n_inputs},4: per-cycle counts diverge")
        spec = NetworkSpec.delta(4, 4, l)
        traffic = UniformTraffic(spec.n_inputs, spec.n_outputs, 1.0)
        e2e_batched_s, m_batched = _best_of(
            REPEATS,
            lambda: measure_acceptance(
                build_router(spec, "batched"), traffic,
                cycles=NATIVE_CYCLES, seed=SEED,
            ),
        )
        e2e_native_s, m_native = _best_of(
            REPEATS,
            lambda: measure_acceptance(
                build_router(spec, "native"), traffic,
                cycles=NATIVE_CYCLES, seed=SEED,
            ),
        )
        e2e_identical = (
            m_batched.offered == m_native.offered
            and m_batched.delivered == m_native.delivered
            and m_batched.blocked_by_stage == m_native.blocked_by_stage
        )
        if not e2e_identical:
            failures.append(f"delta:{n_inputs},4: end-to-end counts diverge")
        speedup = batched_s / native_s
        e2e_speedup = e2e_batched_s / e2e_native_s
        entry = {
            "topology": spec.label,
            "n_inputs": n_inputs,
            "per_cycle": {
                "batch": NATIVE_BATCH,
                "batched_us_per_cycle": round(batched_s / NATIVE_BATCH * 1e6, 1),
                "native_us_per_cycle": round(native_s / NATIVE_BATCH * 1e6, 1),
                "speedup": round(speedup, 2),
                "counts_bit_identical": identical,
            },
            "end_to_end": {
                "cycles": NATIVE_CYCLES,
                "batched_seconds": round(e2e_batched_s, 4),
                "native_seconds": round(e2e_native_s, 4),
                "speedup": round(e2e_speedup, 2),
                "pa": round(m_native.point, 6),
                "counts_bit_identical": e2e_identical,
            },
        }
        results.append(entry)
        print(
            f"N={n_inputs:>6} delta: batched {batched_s / NATIVE_BATCH * 1e6:7.1f} us/cyc  "
            f"native {native_s / NATIVE_BATCH * 1e6:7.1f} us/cyc  "
            f"speedup {speedup:.2f}x (e2e {e2e_speedup:.2f}x)  "
            f"identical={identical and e2e_identical}"
        )
        if (
            n_inputs == 16_384
            and floor_enforced
            and speedup < NATIVE_SPEEDUP_FLOOR
        ):
            failures.append(
                f"delta:{n_inputs},4: native speedup {speedup:.2f}x below "
                f"the {NATIVE_SPEEDUP_FLOOR:.0f}x floor"
            )
    report = {
        "benchmark": "native_kernel",
        "workload": (
            f"counts-only Monte-Carlo, full-load uniform demands, "
            f"batch {NATIVE_BATCH}, end-to-end {NATIVE_CYCLES} cycles, "
            f"seed {SEED}"
        ),
        "engines": {
            "batched": "CompiledStageRouter (NumPy stage kernels)",
            "native": (
                "NativeStageRouter (StagePlan lowered to fused per-stage "
                "loops; numba JIT or plan-specialized runtime-compiled C)"
            ),
        },
        "native_tier": tier,
        "available_tiers": list(tiers),
        "floor": {
            "speedup_at_16384": NATIVE_SPEEDUP_FLOOR,
            "enforced": floor_enforced,
            "cpu_count": cpu_count,
            "counts": "bit-identical per cell, per-cycle and end-to-end",
        },
        "host": {
            "machine": platform.machine(),
            "python": platform.python_version(),
        },
        "results": results,
    }
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {output}")
    return report, failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--backend-matrix",
        action="store_true",
        help="sweep every repro.api backend instead of the batched-vs-per-cycle floor check",
    )
    parser.add_argument(
        "--workload-matrix",
        action="store_true",
        help="sweep the workload_matrix topology x traffic grid on the batched backend",
    )
    parser.add_argument(
        "--plan-cache",
        action="store_true",
        help="record plan-cache warm/cold calls and the adaptive-vs-fixed sweep",
    )
    parser.add_argument(
        "--baseline-matrix",
        action="store_true",
        help="time the compiled delta/omega/dilated baselines against the "
             "per-cycle loop path (>=3x floor at N=4096, bit-identical counts)",
    )
    parser.add_argument(
        "--fault-matrix",
        action="store_true",
        help="time faulted Monte-Carlo on all four families: compiled masked "
             "plans vs the loop and per-message references (>=10x floor at "
             "N=4096, bit-identical counts)",
    )
    parser.add_argument(
        "--fault-buffered",
        action="store_true",
        help="time faulty vs fault-free buffered stepping at N=4096 "
             "(<=1.5x overhead ceiling, conservation + drop accounting "
             "asserted)",
    )
    parser.add_argument(
        "--saturation",
        action="store_true",
        help="time buffered stepping at N=4096: compiled kernels vs the "
             "legacy deque engine (>=5x floor), recording saturation knees",
    )
    parser.add_argument(
        "--native-kernel",
        action="store_true",
        help="time the native (JIT/compiled) kernel backend against the "
             "batched NumPy kernels on counts-only Monte-Carlo "
             "(>=3x floor at N=16384 on >=4-core accelerated hosts, "
             "bit-identical counts asserted)",
    )
    parser.add_argument(
        "--serve-matrix",
        action="store_true",
        help="benchmark the simulation service: cells/sec vs worker count "
             "(>=3x floor 1->4 workers on >=4 cores), concurrent-client "
             "dedupe (>=0.5 floor over >=1000 cells), streaming partials, "
             "and service-vs-inline bit-identity",
    )
    args = parser.parse_args(argv)
    if args.native_kernel:
        _report, failures = run_native_kernel()
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1 if failures else 0
    if args.saturation:
        _report, failures = run_saturation()
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1 if failures else 0
    if args.serve_matrix:
        _report, failures = run_serve_matrix()
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1 if failures else 0
    if args.backend_matrix:
        run_backend_matrix()
        return 0
    if args.workload_matrix:
        run_workload_matrix()
        return 0
    if args.baseline_matrix:
        _report, failures = run_baseline_matrix()
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1 if failures else 0
    if args.fault_buffered:
        _report, failures = run_fault_buffered()
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1 if failures else 0
    if args.fault_matrix:
        _report, failures = run_fault_matrix()
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1 if failures else 0
    if args.plan_cache:
        _report, failures = run_plan_cache()
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1 if failures else 0
    report = run()
    at_4096 = next(r for r in report["results"] if r["n_inputs"] == 4_096)
    if at_4096["speedup"] < SPEEDUP_FLOOR:
        print(
            f"FAIL: N=4096 speedup {at_4096['speedup']:.1f}x "
            f"below the {SPEEDUP_FLOOR:.0f}x floor",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
