"""Benchmark ``fig5_6``: identity permutation and retirement order (Figures 5-6)."""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.experiments import fig6_identity


def test_fig6_identity_permutation(benchmark):
    result = benchmark(fig6_identity.run, cycles=20, seed=0)
    emit(result)
    rows = {
        row[0]: row
        for row in result.tables["structured permutations (messages delivered of 1024)"][1]
    }
    # Figure 5: identity collapses to 64/1024 under canonical retirement.
    assert rows["identity"][1] == 64
    # Figure 6: reversed retirement + fixup routes it completely and correctly.
    assert rows["identity"][2] == 1024
    assert rows["identity"][3] is True
    # "These networks will perform identically in the average case."
    random_rows = result.tables["random permutations (average case)"][1]
    canonical, modified = random_rows[0][1], random_rows[1][1]
    assert abs(canonical - modified) < 0.03
