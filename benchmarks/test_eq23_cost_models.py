"""Benchmark ``eq2_eq3``: cost equations, dilation comparison, cost/performance."""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.experiments import costs


def test_eq2_eq3_closed_forms(benchmark):
    result = benchmark(costs.run)
    emit(result)
    rows = result.tables["cost verification"][1]
    assert len(rows) == len(costs.SWEEP)
    for row in rows:
        assert row[3] is True, f"Eq. 2 mismatch on {row[0]}"
        assert row[5] is True, f"Eq. 3 mismatch on {row[0]}"


def test_dilated_delta_wire_comparison(benchmark):
    result = benchmark(costs.run_dilation_comparison)
    emit(result)
    for row in result.tables["interstage wires per input port"][1]:
        # Section 1: the dilated delta pays d (= c = 4) wires per port where
        # the EDN pays one.
        assert row[-1] == pytest.approx(4.0)


def test_cost_performance_positioning(benchmark):
    result = benchmark(costs.run_cost_performance)
    emit(result)
    crossbar, edn, delta, dilated = result.tables["1024-terminal networks, PA(1)"][1]
    # Section 6: crossbar-like performance at delta-like cost.
    assert crossbar[2] > edn[2] > delta[2]              # performance ordering
    assert delta[1] <= edn[1] < crossbar[1] / 5         # cost ordering
    assert edn[2] > 0.8 * crossbar[2]                   # "similar performance"
    # The dilated alternative also beats the delta, at a higher crosspoint
    # (and, per Section 1, wire) budget than the plain delta.
    assert dilated[2] > delta[2]
    assert dilated[1] > delta[1]
    # Measured PA (compiled batched backend) tracks the analytic column.
    for row in (crossbar, edn, delta, dilated):
        assert row[3] == pytest.approx(row[2], abs=0.05)
