"""Benchmark ``fig7``: PA(1) vs size for the 8-I/O hyperbar families (Figure 7)."""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.experiments import fig7_families


def test_fig7_pa_families_8(benchmark):
    result = benchmark(fig7_families.run, 8)
    emit(result)

    families = ["EDN(8,2,4,*)", "EDN(8,4,2,*)", "EDN(8,8,1,*)"]
    curves = {name: dict(result.series[name]) for name in families}
    crossbar = dict(result.series["Full Crossbar"])

    # Paper shape 1: curves reach the ~10^6-input scale of the figure.
    assert max(max(c) for c in curves.values()) > 2.5e5

    # Paper shape 2: the delta family (c=1) "performs the worse"; capacity
    # helps; the crossbar bounds everything (beyond the one-switch size,
    # where the c=1 member IS the crossbar).
    shared = set.intersection(*(set(c) for c in curves.values()))
    checked = 0
    for x in sorted(shared):
        if x <= 8:
            continue
        assert crossbar[x] >= curves["EDN(8,2,4,*)"][x]
        assert curves["EDN(8,2,4,*)"][x] > curves["EDN(8,4,2,*)"][x]
        assert curves["EDN(8,4,2,*)"][x] > curves["EDN(8,8,1,*)"][x]
        checked += 1
    assert checked >= 2

    # Paper shape 3: crossbar flattens near 1 - 1/e while the delta keeps falling.
    assert crossbar[max(crossbar)] > 0.63
    delta_ys = [y for _, y in sorted(curves["EDN(8,8,1,*)"].items())]
    assert delta_ys[-1] < 0.3
