"""Benchmark ``fig2``: the paper's H(8->4x2) routing example (Figure 2)."""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.experiments import fig2_hyperbar


def test_fig2_hyperbar_routing(benchmark):
    result = benchmark(fig2_hyperbar.run)
    emit(result)
    rows = {row[0]: row for row in result.tables["comparison"][1]}
    assert rows["discarded inputs"][1] == rows["discarded inputs"][2] == "[5, 7]"
    assert rows["accepted count"][1] == rows["accepted count"][2] == 6
