"""Benchmark ``fig11_sim``: MIMD cycle simulation vs the Markov model."""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.experiments import fig11_resubmission


def test_fig11_simulation_validation(benchmark):
    result = benchmark(
        fig11_resubmission.run_simulation_validation, cycles=800, warmup=200
    )
    emit(result)
    for row in result.tables["model vs simulation"][1]:
        _net, pa_model, pa_sim, qa_model, qa_sim, rp_model, rp_sim = row
        assert abs(pa_sim - pa_model) < 0.06
        assert abs(qa_sim - qa_model) < 0.06
        assert abs(rp_sim - rp_model) < 0.06
        # Direction of the resubmission effect: r' inflated above r = 0.5.
        assert rp_sim > 0.5
